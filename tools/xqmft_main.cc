// xqmft — command-line interface to the full pipeline.
//
//   xqmft run <query.xq|query-string> [input ...]   stream document(s)
//   xqmft compile <query.xq|query-string>           print the optimized MFT
//   xqmft translate <query.xq|query-string>         print the raw translation
//   xqmft mft <rules.mft> [input ...]               run a hand-written MFT
//   xqmft validate <schema.sch> <input.xml>         one-pass validation
//   xqmft stats <input.xml>                         document statistics
//
// Arguments that name existing files are read from disk; anything else is
// treated as inline text. `run`/`mft` default to stdin for the document;
// with several inputs (XML or pretok caches, sniffed by magic) each is
// streamed through its own engine and outputs concatenate in input order.
// Flags: --no-opt (skip Section 4.1 passes), --schema <file> (validate
// while transforming), --dag (report output-DAG compression instead of
// writing markup), --stats (print engine statistics to stderr),
// --pretok-cache <file> (tokenize the input once into a binary event cache;
// later runs stream the cache with zero scanning), --threads <N> (parallel
// sharded streaming: a document set fans out across N workers; a single
// pretok input splits at top-level forest boundaries; 0 = one worker per
// hardware thread), --engine table|ops (pin the streaming engine; the
// default picks the lowered opcode engine whenever the plan qualifies —
// see lower/lower.h. --engine=ops on an unlowerable plan notes the reason
// on stderr and runs the table engine).
//
// Multi-query runs: `run` with repeated --query/-q flags (or --query-file,
// one query per line) streams EVERY query over one input document in a
// single pass — one tokenization, one engine per query, a union projection
// automaton skipping subtrees no query can match. Outputs print in query
// order. --no-union-projection disables the skip automaton (measurement).
// Multi-query is serial: combining it with --threads is rejected (sharded
// multi-query execution is future work), as are --schema and --dag.
//
// `serve` reads newline-delimited JSON requests from stdin and writes framed
// responses with per-request statistics (see service/serve.h for the
// protocol, including the "queries" batch form that shares one parse across
// a request set). Queries compile once into a process-wide cache and every
// later request for the same query streams against the cached immutable
// plan; --cache-capacity / --cache-bytes bound the cache, --threads sets
// the default per-request worker count. --max-line-bytes / --max-xml-bytes
// cap request sizes, and requests may carry "deadline_ms" wall-clock
// budgets (see net/server.h for the full hardening model).
//
// `serve --port <N>` (and/or --unix <path>) serves the same protocol over
// sockets instead of stdin: a poll event loop fans connections onto
// --workers query threads behind a bounded admission queue
// (--queue-limit; overload requests are shed with "overloaded" +
// retry_after_ms). It prints one "listening ..." line to stdout when
// ready (--port 0 picks an ephemeral port and reports it there), and
// SIGTERM/SIGINT trigger a graceful drain bounded by --drain-ms.
// --enable-fault-injection exposes the request-level "fault" field for
// stress harnesses.
//
// `client` connects to a serving `xqmft serve --port/--unix` instance,
// forwards stdin lines as requests, and prints the responses — enough for
// shell scripting and smoke tests without a netcat dependency.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/pipeline.h"
#include "data/generators.h"
#include "lower/lower.h"
#include "net/server.h"
#include "parallel/merge_sink.h"
#include "service/query_service.h"
#include "service/serve.h"
#include "mft/mft.h"
#include "schema/schema.h"
#include "stream/dag_sink.h"
#include "stream/engine.h"
#include "util/strings.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

using namespace xqmft;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: xqmft <command> [flags] <args>\n"
      "  run <query> [input ...]      compile and stream (files or stdin)\n"
      "  run -q <q1> -q <q2> [input]  all queries over one input, one pass\n"
      "  compile <query>              print the optimized transducer\n"
      "  translate <query>            print the unoptimized translation\n"
      "  mft <rules> [input ...]      run a hand-written MFT\n"
      "  validate <schema> <input>    one-pass schema validation\n"
      "  stats <input.xml>            document size/depth statistics\n"
      "  serve                        JSON request loop on stdin/stdout\n"
      "  serve --port <N>|--unix <p>  same protocol over sockets\n"
      "  client --port <N>|--unix <p> send stdin requests to a server\n"
      "flags: --no-opt --schema <file> --dag --stats "
      "--pretok-cache <file> --threads <N> --engine table|ops\n"
      "       --query/-q <q> --query-file <file> --no-union-projection "
      "(multi-query run)\n"
      "       --cache-capacity <N> --cache-bytes <N> --max-line-bytes <N> "
      "--max-xml-bytes <N>  (serve)\n"
      "       --workers <N> --queue-limit <N> --drain-ms <N> "
      "--retry-after-ms <N> --enable-fault-injection  (serve --port)\n"
      "       --batch-window-ms <N> --batch-max <N>  "
      "(serve --port: coalesce same-document requests; 0 = off)\n");
  return 2;
}

bool IsFile(const std::string& path) {
  struct ::stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

// Reads the argument as a file if one exists, else returns it verbatim.
Result<std::string> FileOrInline(const std::string& arg) {
  if (!IsFile(arg)) return arg;
  std::FILE* f = std::fopen(arg.c_str(), "rb");
  if (f == nullptr) return Status::InvalidArgument("cannot open " + arg);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// stdin as a ByteSource.
class StdinSource : public ByteSource {
 public:
  std::size_t Read(char* buf, std::size_t n) override {
    return std::fread(buf, 1, n, stdin);
  }
};

struct Flags {
  bool no_opt = false;
  bool dag = false;
  bool stats = false;
  bool no_union_projection = false;
  std::vector<std::string> queries;      ///< repeated --query/-q
  std::vector<std::string> query_files;  ///< --query-file, one per line
  bool threads_set = false;
  long threads = 0;  ///< 0 = one worker per hardware thread
  long cache_capacity = -1;  ///< serve: max resident plans (-1 = default)
  long cache_bytes = -1;     ///< serve: plan byte budget (-1 = unbounded)
  EngineChoice engine = EngineChoice::kAuto;  ///< --engine table|ops
  std::string schema_path;
  std::string pretok_cache;
  // Socket serving / client (serve --port, client).
  bool port_set = false;
  long port = 0;          ///< --port (0 = ephemeral)
  std::string unix_path;  ///< --unix
  long workers = -1;      ///< serve: query worker threads (-1 = default)
  long queue_limit = -1;  ///< serve: admission queue bound (-1 = default)
  long max_line_bytes = -1;   ///< serve: request line cap (-1 = default)
  long max_xml_bytes = -1;    ///< serve: inline xml cap (-1 = default)
  long drain_ms = -1;         ///< serve: shutdown drain budget
  long retry_after_ms = -1;   ///< serve: overload rejection hint floor
  long batch_window_ms = -1;  ///< serve: coalescing gather window (0 = off)
  long batch_max = -1;        ///< serve: max requests per coalesced run
  bool enable_fault_injection = false;  ///< serve: accept "fault" requests
};

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// Parses a numeric flag value with a lower bound; prints the usage error.
bool ParseCountFlag(const char* value, const char* flag, long min_value,
                    long* out) {
  char* end = nullptr;
  *out = std::strtol(value, &end, 10);
  if (end == nullptr || *end != '\0' || *out < min_value) {
    std::fprintf(stderr, "error: %s expects a number >= %ld\n", flag,
                 min_value);
    return false;
  }
  return true;
}

// SIGTERM/SIGINT ask the socket server for a graceful drain;
// NetServer::RequestShutdown is async-signal-safe by contract.
NetServer* g_net_server = nullptr;
extern "C" void HandleShutdownSignal(int) {
  if (g_net_server != nullptr) g_net_server->RequestShutdown();
}

// `serve --port/--unix`: the socket front end (net/server.h).
int ServeNet(const Flags& flags, NetServerOptions options) {
  if (flags.port_set) options.tcp_port = static_cast<int>(flags.port);
  options.unix_path = flags.unix_path;
  if (flags.workers > 0) {
    options.workers = static_cast<std::size_t>(flags.workers);
  }
  if (flags.queue_limit > 0) {
    options.queue_limit = static_cast<std::size_t>(flags.queue_limit);
  }
  if (flags.drain_ms >= 0) {
    options.drain_ms = static_cast<std::uint64_t>(flags.drain_ms);
  }
  if (flags.retry_after_ms >= 0) {
    options.retry_after_ms = static_cast<std::uint64_t>(flags.retry_after_ms);
  }
  if (flags.batch_window_ms >= 0) {
    options.batch_window_ms = static_cast<std::uint64_t>(flags.batch_window_ms);
  }
  if (flags.batch_max > 0) {
    options.batch_max = static_cast<std::size_t>(flags.batch_max);
  }
  options.allow_fault_injection = flags.enable_fault_injection;

  NetServer server(std::move(options));
  Status st = server.Start();
  if (!st.ok()) return Fail(st);
  g_net_server = &server;
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // One parseable readiness line per listener; scripts read the ephemeral
  // port from here.
  if (server.port() >= 0) {
    std::printf("listening port=%d\n", server.port());
  }
  if (!server.unix_path().empty()) {
    std::printf("listening unix=%s\n", server.unix_path().c_str());
  }
  std::fflush(stdout);
  st = server.Run();
  g_net_server = nullptr;
  if (!st.ok()) return Fail(st);
  return 0;
}

// `client`: forwards stdin request lines to a server and prints the
// responses. Sends everything, half-closes, then drains — enough for shell
// scripting without a netcat dependency.
int RunClient(const Flags& flags) {
  int fd = -1;
  if (!flags.unix_path.empty()) {
    sockaddr_un addr{};
    if (flags.unix_path.size() >= sizeof(addr.sun_path)) {
      return Fail(Status::InvalidArgument("--unix path too long"));
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Fail(Status::Internal("socket failed"));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, flags.unix_path.c_str(),
                flags.unix_path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return Fail(Status::Internal("cannot connect to " + flags.unix_path));
    }
  } else if (flags.port_set) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Fail(Status::Internal("socket failed"));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(flags.port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return Fail(Status::Internal(
          StrFormat("cannot connect to 127.0.0.1:%ld", flags.port)));
    }
  } else {
    std::fprintf(stderr, "error: client needs --port or --unix\n");
    return 2;
  }

  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, stdin)) > 0) {
    std::size_t off = 0;
    while (off < n) {
      ssize_t w = ::send(fd, buf + off, n - off, MSG_NOSIGNAL);
      if (w <= 0) {
        ::close(fd);
        return Fail(Status::Internal("cannot send request"));
      }
      off += static_cast<std::size_t>(w);
    }
  }
  ::shutdown(fd, SHUT_WR);
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    std::fwrite(buf, 1, static_cast<std::size_t>(r), stdout);
  }
  std::fflush(stdout);
  ::close(fd);
  return 0;
}

// --engine value: "table" pins the tree-building machine, "ops" requests
// the lowered opcode engine (falls back with a note when the plan does not
// lower). Anything else is a usage error.
bool ParseEngine(const std::string& value, Flags* flags) {
  if (value == "table") {
    flags->engine = EngineChoice::kTable;
  } else if (value == "ops") {
    flags->engine = EngineChoice::kOps;
  } else {
    return false;
  }
  return true;
}

// When the user asked for the opcode engine explicitly but the plan cannot
// lower, say why before the run silently serves from the table engine.
void NoteEngineFallback(const Flags& flags, const Mft& mft) {
  if (flags.engine != EngineChoice::kOps) return;
  std::string why;
  if (lower::GetLoweredPlan(mft, &why) == nullptr) {
    // The cached reason already reads "not lowerable: ..."; strip the
    // prefix so the note does not say it twice.
    const std::string prefix = "not lowerable: ";
    if (why.compare(0, prefix.size(), prefix) == 0) why.erase(0, prefix.size());
    std::fprintf(stderr,
                 "note: plan is not lowerable (%s); falling back to table "
                 "engine\n",
                 why.c_str());
  }
}

// Opens a pretok file as the run's event source, rejecting a stream whose
// tokenization options differ from the run's (it would replay different
// events).
Result<std::unique_ptr<PretokSource>> OpenPretokEvents(const std::string& path,
                                                       SaxOptions sax) {
  XQMFT_ASSIGN_OR_RETURN(std::unique_ptr<PretokSource> p,
                         PretokSource::OpenFile(path));
  if (!SameTokenization(p->declared_options(), sax)) {
    return Status::InvalidArgument(
        "pretok cache " + path +
        " was tokenized under different SAX options; delete it to "
        "re-tokenize");
  }
  return p;
}

int StreamWith(const CompiledPlan& plan,
               const std::vector<std::string>& inputs, const Flags& flags) {
  // Serial runs may carry per-run state (the schema validator) on top of
  // the plan's baked-in stream options; parallel runs may not.
  StreamOptions options = plan.options().stream;
  std::shared_ptr<const Schema> schema;
  std::unique_ptr<SchemaValidator> validator;
  if (!flags.schema_path.empty()) {
    Result<std::string> text = FileOrInline(flags.schema_path);
    if (!text.ok()) return Fail(text.status());
    Result<std::shared_ptr<const Schema>> s = Schema::Parse(text.value());
    if (!s.ok()) return Fail(s.status());
    schema = s.value();
    validator = std::make_unique<SchemaValidator>(schema);
    options.validator = validator.get();
  }

  const bool parallel = flags.threads_set || inputs.size() > 1;
  if (parallel && options.validator != nullptr) {
    return Fail(Status::InvalidArgument(
        "schema validation is per-run stateful and not supported by "
        "parallel runs; validate inputs individually"));
  }
  const std::string input_arg = inputs.empty() ? "" : inputs[0];

  // Parallel run state (document-set fan-out, or single-document sharding
  // of a pretok cache at top-level forest boundaries).
  std::vector<ParallelInput> par_inputs;
  std::string sharded_pretok;  // single-document sharding when non-empty
  ParallelOptions par;
  std::vector<StreamStats> par_stats;

  // Serial run state.
  std::unique_ptr<EventSource> events;
  std::unique_ptr<ByteSource> source;

  if (parallel) {
    if (inputs.empty()) {
      return Fail(Status::InvalidArgument(
          "--threads requires named input files; stdin cannot be sharded"));
    }
    // Threads are an explicit opt-in: several inputs without --threads run
    // serially, in order (only the staging/merge machinery is shared).
    par.threads =
        flags.threads_set ? static_cast<std::size_t>(flags.threads) : 1;
    if (!flags.pretok_cache.empty()) {
      if (inputs.size() > 1) {
        return Fail(Status::InvalidArgument(
            "--pretok-cache expects a single input; give each document its "
            "own cache"));
      }
      // Same freshness rule as the serial path: with no comparable input
      // (the XML deleted since the cache was built) an existing cache
      // serves alone instead of failing on the missing file.
      bool cache_fresh =
          IsFile(input_arg)
              ? PretokCacheValid(flags.pretok_cache, input_arg, options.sax)
              : IsFile(flags.pretok_cache);
      if (!cache_fresh) {
        Status st =
            PretokenizeXmlFile(input_arg, flags.pretok_cache, options.sax);
        if (!st.ok()) return Fail(st);
      }
      sharded_pretok = flags.pretok_cache;
    } else if (inputs.size() == 1 && IsPretokFile(inputs[0])) {
      sharded_pretok = inputs[0];
    } else {
      for (const std::string& path : inputs) {
        if (!IsFile(path)) {
          return Fail(Status::InvalidArgument("cannot open " + path));
        }
        par_inputs.push_back(IsPretokFile(path)
                                 ? ParallelInput::PretokFile(path)
                                 : ParallelInput::XmlFile(path));
      }
      if (par_inputs.size() == 1) {
        std::fprintf(stderr,
                     "note: one text-XML input cannot be split; give a "
                     "pretok cache (--pretok-cache) to shard a single "
                     "document\n");
      }
    }
  } else if (!flags.pretok_cache.empty()) {
    // Re-tokenize when the cache is missing or was not built from the
    // current bytes of an existing file input (the header records the
    // source's size + hash). With no comparable input (stdin, or the XML
    // already deleted) an existing cache serves alone — note the stdin case
    // on stderr, since any piped document goes unread.
    bool comparable = !input_arg.empty() && IsFile(input_arg);
    bool cache_fresh =
        comparable
            ? PretokCacheValid(flags.pretok_cache, input_arg, options.sax)
            : IsFile(flags.pretok_cache);
    if (!cache_fresh) {
      Status st;
      if (input_arg.empty()) {
        StdinSource stdin_source;
        std::string bytes;
        st = PretokenizeXml(&stdin_source, options.sax, &bytes);
        if (st.ok()) st = WritePretokFile(bytes, flags.pretok_cache);
      } else {
        st = PretokenizeXmlFile(input_arg, flags.pretok_cache, options.sax);
      }
      if (!st.ok()) return Fail(st);
    } else if (input_arg.empty()) {
      std::fprintf(stderr,
                   "note: streaming existing pretok cache %s; stdin not "
                   "read\n",
                   flags.pretok_cache.c_str());
    }
    Result<std::unique_ptr<PretokSource>> p =
        OpenPretokEvents(flags.pretok_cache, options.sax);
    if (!p.ok()) return Fail(p.status());
    events = std::move(p).value();
  } else if (input_arg.empty()) {
    source = std::make_unique<StdinSource>();
  } else if (IsPretokFile(input_arg)) {
    // A pretok cache as the positional input streams as events on the
    // serial path too — the same sniff the parallel path does, so adding
    // or dropping --threads never changes how an input is interpreted.
    Result<std::unique_ptr<PretokSource>> p =
        OpenPretokEvents(input_arg, options.sax);
    if (!p.ok()) return Fail(p.status());
    events = std::move(p).value();
  } else {
    Result<std::unique_ptr<ByteSource>> f = MmapSource::Open(input_arg);
    if (!f.ok()) return Fail(f.status());
    source = std::move(f).value();
  }

  auto stream = [&](OutputSink* sink, StreamStats* stats) {
    if (parallel) {
      Status st =
          !sharded_pretok.empty()
              ? StreamShardedPretokFileTransform(plan, sharded_pretok,
                                                 /*shards=*/0, sink, par,
                                                 &par_stats)
              : StreamManyTransform(plan, par_inputs, sink, par, &par_stats);
      if (stats != nullptr) *stats = AggregateStreamStats(par_stats);
      return st;
    }
    return events != nullptr
               ? StreamTransformEvents(plan.mft(), events.get(), sink,
                                       options, stats)
               : StreamTransform(plan.mft(), source.get(), sink, options,
                                 stats);
  };

  StreamStats stats;
  Status st;
  if (flags.dag) {
    DagSink sink;
    st = stream(&sink, &stats);
    if (!st.ok()) return Fail(st);
    std::printf("output nodes:   %llu\n",
                static_cast<unsigned long long>(sink.total_nodes()));
    std::printf("grammar rules:  %zu\n", sink.unique_nodes());
    std::printf("compression:    %.2fx\n", sink.CompressionRatio());
  } else {
    FileSink sink(stdout);
    st = stream(&sink, &stats);
    sink.Flush();
    std::printf("\n");
    if (!st.ok()) return Fail(st);
  }
  if (flags.stats) {
    // The lowering verdict is a plan property, independent of which engine
    // this run used: "yes (full)", "yes (hybrid: ...)", or "no (<reason>)".
    std::string why;
    const bool lowered = lower::GetLoweredPlan(plan.mft(), &why) != nullptr;
    const std::string prefix = "not lowerable: ";
    if (!lowered && why.compare(0, prefix.size(), prefix) == 0) {
      why.erase(0, prefix.size());
    }
    std::fprintf(stderr,
                 "bytes in: %zu, output events: %zu, peak memory: %s, "
                 "rule applications: %llu, cells arena: %llu, "
                 "cells refcounted: %llu, exprs created: %llu, "
                 "bridge runs: %llu, engine: %s, lowered: %s (%s)\n",
                 stats.bytes_in, stats.output_events,
                 HumanBytes(stats.peak_bytes).c_str(),
                 static_cast<unsigned long long>(stats.rule_applications),
                 static_cast<unsigned long long>(stats.cells_arena),
                 static_cast<unsigned long long>(stats.cells_created),
                 static_cast<unsigned long long>(stats.exprs_created),
                 static_cast<unsigned long long>(stats.bridge_runs),
                 stats.used_ops_engine ? "ops" : "table",
                 lowered ? "yes" : "no", why.c_str());
  }
  return 0;
}

// `run` with --query/-q flags: every query over one input, one pass.
int RunMulti(const std::vector<std::string>& inputs, const Flags& flags) {
  if (flags.threads_set) {
    return Fail(Status::InvalidArgument(
        "--threads cannot combine with multi-query --query: the shared "
        "single-pass execution is serial (sharding a multi-query run is "
        "future work)"));
  }
  if (!flags.schema_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--schema cannot combine with multi-query --query; validate the "
        "input separately with `xqmft validate`"));
  }
  if (flags.dag) {
    return Fail(Status::InvalidArgument(
        "--dag cannot combine with multi-query --query"));
  }
  if (!flags.pretok_cache.empty()) {
    return Fail(Status::InvalidArgument(
        "--pretok-cache cannot combine with multi-query --query; build the "
        "cache with a single-query run and pass the .ptk file as the "
        "input"));
  }
  if (inputs.size() > 1) {
    return Fail(Status::InvalidArgument(
        "multi-query run streams one input document; got " +
        std::to_string(inputs.size())));
  }

  std::vector<std::string> texts;
  for (const std::string& q : flags.queries) {
    Result<std::string> text = FileOrInline(q);
    if (!text.ok()) return Fail(text.status());
    texts.push_back(std::move(text).value());
  }
  for (const std::string& path : flags.query_files) {
    if (!IsFile(path)) {
      return Fail(Status::InvalidArgument("cannot open " + path));
    }
    Result<std::string> body = FileOrInline(path);
    if (!body.ok()) return Fail(body.status());
    // One query per line; blank lines separate and are skipped.
    std::string_view rest = body.value();
    while (!rest.empty()) {
      std::size_t nl = rest.find('\n');
      std::string_view line = rest.substr(0, nl);
      rest = nl == std::string_view::npos ? std::string_view() : rest.substr(nl + 1);
      if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
      texts.emplace_back(line);
    }
  }
  if (texts.empty()) {
    return Fail(Status::InvalidArgument(
        "no queries: every --query-file line was blank"));
  }

  PipelineOptions po;
  po.optimize = !flags.no_opt;
  po.stream.engine = flags.engine;
  std::vector<std::shared_ptr<const CompiledPlan>> plans;
  std::vector<const CompiledPlan*> raw;
  for (std::size_t i = 0; i < texts.size(); ++i) {
    Result<std::shared_ptr<const CompiledPlan>> plan =
        CompiledPlan::Compile(texts[i], po);
    if (!plan.ok()) {
      std::fprintf(stderr, "error: query %zu: %s\n", i + 1,
                   plan.status().ToString().c_str());
      return 1;
    }
    plans.push_back(std::move(plan).value());
    raw.push_back(plans.back().get());
  }

  ParallelInput input;
  if (inputs.empty()) {
    StdinSource stdin_source;
    std::string xml;
    char buf[1 << 16];
    std::size_t n;
    while ((n = stdin_source.Read(buf, sizeof buf)) > 0) xml.append(buf, n);
    input = ParallelInput::XmlText(std::move(xml));
  } else if (!IsFile(inputs[0])) {
    return Fail(Status::InvalidArgument("cannot open " + inputs[0]));
  } else {
    input = IsPretokFile(inputs[0]) ? ParallelInput::PretokFile(inputs[0])
                                    : ParallelInput::XmlFile(inputs[0]);
  }

  // Each engine records into its own buffer; stdout gets the replays in
  // query order once the pass is done, so interleaved engine output never
  // interleaves on the wire.
  std::vector<EventBuffer> buffers(raw.size());
  std::vector<OutputSink*> sinks;
  for (EventBuffer& b : buffers) sinks.push_back(&b);
  MultiQueryOptions multi;
  multi.union_projection = !flags.no_union_projection;
  std::vector<MultiPlanResult> results;
  MultiQueryStats run_stats;
  Status st =
      StreamAllTransformInput(raw, input, sinks, multi, &results, &run_stats);
  if (results.size() != raw.size()) return Fail(st);

  FileSink out(stdout);
  int failed = 0;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (results[i].status.ok()) {
      buffers[i].Replay(&out);
      out.Flush();
      std::printf("\n");
    } else {
      ++failed;
      std::fprintf(stderr, "error: query %zu: %s\n", i + 1,
                   results[i].status.ToString().c_str());
    }
  }
  if (flags.stats) {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const StreamStats& s = results[i].stats;
      std::fprintf(stderr,
                   "query %zu: events fed: %llu, output events: %zu, "
                   "peak memory: %s\n",
                   i + 1,
                   static_cast<unsigned long long>(results[i].events_fed),
                   s.output_events, HumanBytes(s.peak_bytes).c_str());
    }
    std::fprintf(stderr,
                 "shared pass: bytes in: %llu, events: %llu, skipped by "
                 "projection: %llu (projection %s)\n",
                 static_cast<unsigned long long>(run_stats.bytes_in),
                 static_cast<unsigned long long>(run_stats.events_total),
                 static_cast<unsigned long long>(run_stats.events_skipped),
                 run_stats.projection_enabled ? "on" : "off");
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--no-opt") {
      flags.no_opt = true;
    } else if ((a == "--query" || a == "-q") && i + 1 < argc) {
      flags.queries.push_back(argv[++i]);
    } else if (a == "--query-file" && i + 1 < argc) {
      flags.query_files.push_back(argv[++i]);
    } else if (a == "--no-union-projection") {
      flags.no_union_projection = true;
    } else if (a == "--dag") {
      flags.dag = true;
    } else if (a == "--stats") {
      flags.stats = true;
    } else if (a == "--schema" && i + 1 < argc) {
      flags.schema_path = argv[++i];
    } else if (a == "--pretok-cache" && i + 1 < argc) {
      flags.pretok_cache = argv[++i];
    } else if (a == "--engine" && i + 1 < argc) {
      if (!ParseEngine(argv[++i], &flags)) {
        std::fprintf(stderr, "error: --engine expects 'table' or 'ops'\n");
        return 2;
      }
    } else if (a.rfind("--engine=", 0) == 0) {
      if (!ParseEngine(a.substr(std::strlen("--engine=")), &flags)) {
        std::fprintf(stderr, "error: --engine expects 'table' or 'ops'\n");
        return 2;
      }
    } else if (a == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      flags.threads = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || flags.threads < 0) {
        std::fprintf(stderr, "error: --threads expects a count >= 0\n");
        return 2;
      }
      flags.threads_set = true;
    } else if (a == "--cache-capacity" && i + 1 < argc) {
      char* end = nullptr;
      flags.cache_capacity = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || flags.cache_capacity < 1) {
        std::fprintf(stderr,
                     "error: --cache-capacity expects a count >= 1\n");
        return 2;
      }
    } else if (a == "--cache-bytes" && i + 1 < argc) {
      char* end = nullptr;
      flags.cache_bytes = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || flags.cache_bytes < 1) {
        std::fprintf(stderr, "error: --cache-bytes expects a size >= 1\n");
        return 2;
      }
    } else if (a == "--port" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--port", 0, &flags.port)) return 2;
      flags.port_set = true;
    } else if (a == "--unix" && i + 1 < argc) {
      flags.unix_path = argv[++i];
    } else if (a == "--workers" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--workers", 1, &flags.workers)) {
        return 2;
      }
    } else if (a == "--queue-limit" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--queue-limit", 1,
                          &flags.queue_limit)) {
        return 2;
      }
    } else if (a == "--max-line-bytes" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--max-line-bytes", 0,
                          &flags.max_line_bytes)) {
        return 2;
      }
    } else if (a == "--max-xml-bytes" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--max-xml-bytes", 0,
                          &flags.max_xml_bytes)) {
        return 2;
      }
    } else if (a == "--drain-ms" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--drain-ms", 0, &flags.drain_ms)) {
        return 2;
      }
    } else if (a == "--retry-after-ms" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--retry-after-ms", 0,
                          &flags.retry_after_ms)) {
        return 2;
      }
    } else if (a == "--batch-window-ms" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--batch-window-ms", 0,
                          &flags.batch_window_ms)) {
        return 2;
      }
    } else if (a == "--batch-max" && i + 1 < argc) {
      if (!ParseCountFlag(argv[++i], "--batch-max", 1, &flags.batch_max)) {
        return 2;
      }
    } else if (a == "--enable-fault-injection") {
      flags.enable_fault_injection = true;
    } else {
      args.push_back(std::move(a));
    }
  }

  const bool multi_query =
      !flags.queries.empty() || !flags.query_files.empty();
  if (multi_query && cmd != "run") {
    std::fprintf(stderr, "error: --query/--query-file only apply to run\n");
    return 2;
  }
  if (cmd == "run" && multi_query) {
    return RunMulti(args, flags);
  }

  if (cmd == "run" || cmd == "compile" || cmd == "translate") {
    if (args.empty()) return Usage();
    Result<std::string> query_text = FileOrInline(args[0]);
    if (!query_text.ok()) return Fail(query_text.status());
    PipelineOptions po;
    po.optimize = !flags.no_opt;
    po.stream.engine = flags.engine;
    Result<std::unique_ptr<CompiledQuery>> cq =
        CompiledQuery::Compile(query_text.value(), po);
    if (!cq.ok()) return Fail(cq.status());
    if (cmd == "compile") {
      std::printf("%s", cq.value()->mft().ToString().c_str());
      std::fprintf(stderr, "%s\n",
                   cq.value()->optimize_report().ToString().c_str());
      return 0;
    }
    if (cmd == "translate") {
      std::printf("%s", cq.value()->unoptimized_mft().ToString().c_str());
      return 0;
    }
    NoteEngineFallback(flags, cq.value()->mft());
    return StreamWith(
        *cq.value()->plan(),
        std::vector<std::string>(args.begin() + 1, args.end()), flags);
  }

  if (cmd == "mft") {
    if (args.empty()) return Usage();
    Result<std::string> rules = FileOrInline(args[0]);
    if (!rules.ok()) return Fail(rules.status());
    Result<Mft> mft = ParseMft(rules.value());
    if (!mft.ok()) return Fail(mft.status());
    // Hand-written rules serve through the same immutable plan artifact as
    // compiled queries (validated + dispatch warmed before any fan-out).
    PipelineOptions po;
    po.stream.engine = flags.engine;
    Result<std::shared_ptr<const CompiledPlan>> plan =
        CompiledPlan::FromMft(std::move(mft).value(), po);
    if (!plan.ok()) return Fail(plan.status());
    NoteEngineFallback(flags, plan.value()->mft());
    return StreamWith(*plan.value(),
                      std::vector<std::string>(args.begin() + 1, args.end()),
                      flags);
  }

  if (cmd == "validate") {
    if (args.size() < 2) return Usage();
    Result<std::string> schema_text = FileOrInline(args[0]);
    if (!schema_text.ok()) return Fail(schema_text.status());
    Result<std::shared_ptr<const Schema>> schema =
        Schema::Parse(schema_text.value());
    if (!schema.ok()) return Fail(schema.status());
    Result<std::unique_ptr<ByteSource>> src = MmapSource::Open(args[1]);
    if (!src.ok()) return Fail(src.status());
    SaxParser parser(src.value().get());
    SchemaValidator v(schema.value());
    XmlEvent ev;
    do {
      Status st = parser.Next(&ev);
      if (!st.ok()) return Fail(st);
      Status vs = v.Feed(ev);
      if (!vs.ok()) return Fail(vs);
    } while (ev.type != XmlEventType::kEndOfDocument);
    std::printf("valid\n");
    return 0;
  }

  if (cmd == "serve") {
    if (!args.empty()) {
      std::fprintf(stderr, "error: serve takes flags only\n");
      return 2;
    }
    if (flags.port_set || !flags.unix_path.empty()) {
      NetServerOptions no;
      if (flags.cache_capacity > 0) {
        no.cache.capacity = static_cast<std::size_t>(flags.cache_capacity);
      }
      if (flags.cache_bytes > 0) {
        no.cache.max_bytes = static_cast<std::size_t>(flags.cache_bytes);
      }
      no.pipeline.optimize = !flags.no_opt;
      no.pipeline.stream.engine = flags.engine;
      if (flags.threads_set) {
        no.default_threads = static_cast<std::size_t>(flags.threads);
      }
      if (flags.max_line_bytes >= 0) {
        no.limits.max_line_bytes =
            static_cast<std::size_t>(flags.max_line_bytes);
      }
      if (flags.max_xml_bytes >= 0) {
        no.limits.max_inline_xml_bytes =
            static_cast<std::size_t>(flags.max_xml_bytes);
      }
      return ServeNet(flags, std::move(no));
    }
    ServeOptions so;
    if (flags.cache_capacity > 0) {
      so.cache.capacity = static_cast<std::size_t>(flags.cache_capacity);
    }
    if (flags.cache_bytes > 0) {
      so.cache.max_bytes = static_cast<std::size_t>(flags.cache_bytes);
    }
    so.pipeline.optimize = !flags.no_opt;
    so.pipeline.stream.engine = flags.engine;
    if (flags.threads_set) {
      so.default_threads = static_cast<std::size_t>(flags.threads);
    }
    if (flags.max_line_bytes >= 0) {
      so.limits.max_line_bytes =
          static_cast<std::size_t>(flags.max_line_bytes);
    }
    if (flags.max_xml_bytes >= 0) {
      so.limits.max_inline_xml_bytes =
          static_cast<std::size_t>(flags.max_xml_bytes);
    }
    so.allow_fault_injection = flags.enable_fault_injection;
    Status st = ServeLoop(stdin, stdout, so);
    if (!st.ok()) return Fail(st);
    return 0;
  }

  if (cmd == "client") {
    if (!args.empty()) {
      std::fprintf(stderr, "error: client takes flags only\n");
      return 2;
    }
    return RunClient(flags);
  }

  if (cmd == "stats") {
    if (args.empty()) return Usage();
    Result<DatasetStats> stats = ScanDatasetFile(args[0]);
    if (!stats.ok()) return Fail(stats.status());
    std::printf("bytes: %zu\nelements: %zu\ntexts: %zu\ndepth: %zu\n",
                stats.value().bytes, stats.value().elements,
                stats.value().texts, stats.value().depth);
    return 0;
  }

  return Usage();
}
