// Tests for the parallel sharding layer: the serial-equivalence
// differential suite (parallel output byte-identical to the serial
// engine's, across the Figure 3 corpus, shard counts {1,2,3,4,8}, and both
// text and pretok input), the top-level forest splitter (a cut at *every*
// boundary reassembles the original event trace), and ordered-merge stress
// (out-of-order completion, mid-shard errors).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "event_trace_util.h"
#include "parallel/merge_sink.h"
#include "parallel/pretok_split.h"
#include "parallel/sharded_executor.h"
#include "stream/engine.h"
#include "util/rng.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 4, 8};

std::string Tokenize(const std::string& xml, SaxOptions sax = {}) {
  StringSource src(xml);
  std::string out;
  Status st = PretokenizeXml(&src, sax, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

Forest RandomForest(Rng* rng, int depth) {
  Forest f;
  int width = static_cast<int>(rng->Below(4));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(4))),
          RandomForest(rng, depth - 1)));
    } else if (f.empty() || f.back().kind != NodeKind::kText) {
      f.push_back(Tree::Text("t" + std::to_string(rng->Below(5))));
    }
  }
  return f;
}

// A small document set: single-rooted documents of varying shape, the unit
// of document-set sharding.
std::vector<std::string> CorpusDocSet(int seed) {
  std::vector<std::string> docs;
  Rng rng(static_cast<std::uint64_t>(seed) * 90017 + 3);
  for (int d = 0; d < 5; ++d) {
    Forest doc;
    doc.push_back(Tree::Element("site", RandomForest(&rng, 4)));
    docs.push_back(ForestToXml(doc));
  }
  return docs;
}

// ---------------------------------------------------------------------------
// EventBuffer / OrderedMerge units
// ---------------------------------------------------------------------------

TEST(EventBufferTest, ReplaysRecordedEventsVerbatim) {
  EventBuffer buffer;
  buffer.StartElement("a");
  buffer.Text("x < y & z");
  buffer.StartElement("empty");
  buffer.EndElement("empty");
  buffer.Text("");
  buffer.EndElement("a");

  StringSink direct;
  direct.StartElement("a");
  direct.Text("x < y & z");
  direct.StartElement("empty");
  direct.EndElement("empty");
  direct.Text("");
  direct.EndElement("a");

  StringSink replayed;
  buffer.Replay(&replayed);
  EXPECT_EQ(replayed.str(), direct.str());
  EXPECT_FALSE(buffer.empty());
}

TEST(OrderedMergeTest, OutOfOrderCommitsFlushInInputOrder) {
  StringSink out;
  OrderedMerge merge(&out, 3);
  EventBuffer b2;
  b2.Text("2");
  merge.Commit(2, std::move(b2), Status::OK());
  EXPECT_EQ(out.str(), "");  // slot 0 still open
  EventBuffer b0;
  b0.Text("0");
  merge.Commit(0, std::move(b0), Status::OK());
  EXPECT_EQ(out.str(), "0");  // slot 1 still gates slot 2
  EventBuffer b1;
  b1.Text("1");
  merge.Commit(1, std::move(b1), Status::OK());
  EXPECT_EQ(out.str(), "012");
  EXPECT_TRUE(merge.Finish().ok());
}

TEST(OrderedMergeTest, ErrorGatesDownstreamAndBecomesRunStatus) {
  StringSink out;
  OrderedMerge merge(&out, 3);
  EventBuffer b1;
  b1.Text("partial");
  merge.Commit(1, std::move(b1), Status::Internal("shard 1 died"));
  EventBuffer b2;
  b2.Text("2");
  merge.Commit(2, std::move(b2), Status::OK());
  EventBuffer b0;
  b0.Text("0");
  merge.Commit(0, std::move(b0), Status::OK());
  // The OK prefix before the failure flushes; nothing at or after it does.
  EXPECT_EQ(out.str(), "0");
  EXPECT_TRUE(merge.saw_error());
  Status st = merge.Finish();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shard 1 died"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ShardedExecutor stress: out-of-order completion, errors, cancellation
// ---------------------------------------------------------------------------

TEST(ShardedExecutorTest, InjectedDelaysStillEmitInInputOrder) {
  // Workers finishing out of order (later items sleep less) must not change
  // the output order.
  constexpr std::size_t kItems = 16;
  std::string expected;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected += "<item" + std::to_string(i) + "></item" + std::to_string(i) +
                ">";
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    StringSink out;
    ParallelOptions par;
    par.threads = threads;
    Status st = ShardedExecutor::Run(
        kItems,
        [](std::size_t i, OutputSink* sink) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds((kItems - i) % 5));
          std::string name = "item" + std::to_string(i);
          sink->StartElement(name);
          sink->EndElement(name);
          return Status::OK();
        },
        &out, par);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(out.str(), expected) << "threads=" << threads;
  }
}

TEST(ShardedExecutorTest, MidShardErrorSurfacesWithoutDeadlock) {
  constexpr std::size_t kItems = 16;
  constexpr std::size_t kFailing = 7;
  StringSink out;
  ParallelOptions par;
  par.threads = 4;
  Status st = ShardedExecutor::Run(
      kItems,
      [](std::size_t i, OutputSink* sink) -> Status {
        std::this_thread::sleep_for(std::chrono::milliseconds(i % 3));
        sink->Text("i" + std::to_string(i) + ";");
        if (i == kFailing) {
          return Status::ResourceExhausted("engine error in item 7");
        }
        return Status::OK();
      },
      &out, par);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("item 7"), std::string::npos);
  // Downstream holds an in-order prefix of the successful items before the
  // failure: "i0;i1;...i{j-1};" for some j <= kFailing.
  std::string prefix;
  bool matched = false;
  for (std::size_t j = 0; j <= kFailing; ++j) {
    if (out.str() == prefix) {
      matched = true;
      break;
    }
    prefix += "i" + std::to_string(j) + ";";
  }
  EXPECT_TRUE(matched) << "unexpected downstream output: " << out.str();
}

TEST(ShardedExecutorTest, FirstErrorInInputOrderWins) {
  // Two failing items: the run's status must be the lower-index one
  // whenever both committed (with cancellation the higher may be skipped,
  // but the reported error is never the higher while the lower committed).
  ParallelOptions par;
  par.threads = 2;
  StringSink out;
  Status st = ShardedExecutor::Run(
      4,
      [](std::size_t i, OutputSink*) -> Status {
        if (i == 1) {
          // Give the other worker time to reach item 2 first.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return Status::Internal("error in item 1");
        }
        if (i == 2) return Status::Internal("error in item 2");
        return Status::OK();
      },
      &out, par);
  ASSERT_FALSE(st.ok());
  // The run reports exactly one of the two item errors (the lowest-index
  // committed one; which items committed depends on cancellation timing).
  bool is1 = st.message().find("error in item 1") != std::string::npos;
  bool is2 = st.message().find("error in item 2") != std::string::npos;
  EXPECT_TRUE(is1 != is2) << st.ToString();
}

TEST(ShardedExecutorTest, SerialPathStagesFailingItemOutput) {
  // threads = 1 takes the no-thread fast path, but the error contract must
  // not change: a failing item's partial output never reaches the sink.
  StringSink out;
  ParallelOptions par;
  par.threads = 1;
  Status st = ShardedExecutor::Run(
      3,
      [](std::size_t i, OutputSink* sink) -> Status {
        sink->Text("i" + std::to_string(i) + ";");
        if (i == 1) return Status::Internal("item 1 failed mid-output");
        return Status::OK();
      },
      &out, par);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("item 1"), std::string::npos);
  EXPECT_EQ(out.str(), "i0;");  // item 1's partial "i1;" must not leak
}

TEST(ShardedExecutorTest, ZeroItemsIsANoOp) {
  StringSink out;
  Status st = ShardedExecutor::Run(
      0, [](std::size_t, OutputSink*) { return Status::OK(); }, &out, {});
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(out.str(), "");
}

// ---------------------------------------------------------------------------
// Serial-equivalence differential suite: document-set sharding
// ---------------------------------------------------------------------------

class ParallelCorpusEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelCorpusEquivalence, DocumentSetMatchesSerialTextAndPretok) {
  const BenchQuery& bq = QueryById(GetParam());
  auto cq = std::move(CompiledQuery::Compile(bq.text).ValueOrDie());
  std::vector<std::string> docs = CorpusDocSet(/*seed=*/17);

  // Serial baseline: the documents streamed one after another into one
  // sink, text input.
  StringSink serial;
  std::vector<ParallelInput> text_inputs;
  std::vector<ParallelInput> pretok_inputs;
  for (const std::string& xml : docs) {
    ASSERT_TRUE(cq->StreamString(xml, &serial).ok()) << bq.id;
    text_inputs.push_back(ParallelInput::XmlText(xml));
    pretok_inputs.push_back(ParallelInput::PretokBytes(Tokenize(xml)));
  }

  for (std::size_t threads : kShardCounts) {
    ParallelOptions par;
    par.threads = threads;
    StringSink text_out;
    Status st = cq->StreamMany(text_inputs, &text_out, par);
    ASSERT_TRUE(st.ok()) << bq.id << " " << st.ToString();
    EXPECT_EQ(text_out.str(), serial.str())
        << bq.id << " text threads=" << threads;

    StringSink pretok_out;
    std::vector<StreamStats> stats;
    st = cq->StreamMany(pretok_inputs, &pretok_out, par, &stats);
    ASSERT_TRUE(st.ok()) << bq.id << " " << st.ToString();
    EXPECT_EQ(pretok_out.str(), serial.str())
        << bq.id << " pretok threads=" << threads;
    ASSERT_EQ(stats.size(), docs.size());
    for (const StreamStats& s : stats) EXPECT_GT(s.bytes_in, 0u);
  }
}

// ---------------------------------------------------------------------------
// Serial-equivalence differential suite: single-document sharding
// ---------------------------------------------------------------------------

TEST_P(ParallelCorpusEquivalence, SingleRootedShardingMatchesSerial) {
  // Every XML *document* is single-rooted: however many shards are
  // requested, the split finds one top-level tree and the output must be
  // byte-identical to the serial engine over the whole stream.
  const BenchQuery& bq = QueryById(GetParam());
  auto cq = std::move(CompiledQuery::Compile(bq.text).ValueOrDie());
  Rng rng(4242);
  Forest doc;
  doc.push_back(Tree::Element("site", RandomForest(&rng, 4)));
  std::string bytes = Tokenize(ForestToXml(doc));

  PretokSource serial_src(bytes);
  StringSink serial;
  ASSERT_TRUE(cq->StreamEvents(&serial_src, &serial).ok()) << bq.id;

  for (std::size_t shards : kShardCounts) {
    ParallelOptions par;
    par.threads = shards;
    StringSink out;
    Status st = cq->StreamShardedPretok(bytes, shards, &out, par);
    ASSERT_TRUE(st.ok()) << bq.id << " " << st.ToString();
    EXPECT_EQ(out.str(), serial.str()) << bq.id << " shards=" << shards;
  }
}

TEST_P(ParallelCorpusEquivalence, MultiTreeShardingMatchesSerialShardRuns) {
  // A multi-tree forest genuinely splits. The contract: each shard's trees
  // evaluate as an independent forest document, outputs concatenated in
  // input order — byte-identical to running the same shards through the
  // serial engine one by one, for any thread count.
  const BenchQuery& bq = QueryById(GetParam());
  auto cq = std::move(CompiledQuery::Compile(bq.text).ValueOrDie());
  Rng rng(987);
  Forest forest;
  for (int t = 0; t < 7; ++t) {
    forest.push_back(Tree::Element("site", RandomForest(&rng, 3)));
  }
  std::string bytes = Tokenize(ForestToXml(forest));

  for (std::size_t shards : kShardCounts) {
    Result<PretokShardPlan> plan = PlanPretokShards(bytes, shards);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // Serial oracle: the same shard decomposition, one engine at a time.
    StringSink serial;
    for (std::size_t i = 0; i < plan.value().shards.size(); ++i) {
      PretokShardSource src(&plan.value(), i);
      ASSERT_TRUE(cq->StreamEvents(&src, &serial).ok()) << bq.id;
    }

    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      ParallelOptions par;
      par.threads = threads;
      StringSink out;
      Status st = cq->StreamShardedPretok(bytes, shards, &out, par);
      ASSERT_TRUE(st.ok()) << bq.id << " " << st.ToString();
      EXPECT_EQ(out.str(), serial.str())
          << bq.id << " shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ParallelPipelineTest, DefaultShardCountIsMachineIndependent) {
  // shards = 0 must split at every top-level boundary, not at the worker
  // count: on a multi-tree forest the decomposition shapes the output, so
  // it may depend only on the input. Same bytes, different thread counts
  // => byte-identical output, equal to an explicit one-shard-per-tree run.
  auto cq = std::move(
      CompiledQuery::Compile("<out>{ $input/a }</out>").ValueOrDie());
  std::string bytes = Tokenize("<a>1</a><a>2</a><a>3</a><a>4</a>");

  StringSink per_tree;
  ASSERT_TRUE(cq->StreamShardedPretok(bytes, 4, &per_tree).ok());

  for (std::size_t threads : {std::size_t{1}, std::size_t{3},
                              std::size_t{8}}) {
    ParallelOptions par;
    par.threads = threads;
    StringSink out;
    ASSERT_TRUE(cq->StreamShardedPretok(bytes, /*shards=*/0, &out, par).ok());
    EXPECT_EQ(out.str(), per_tree.str()) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParallelCorpusEquivalence,
                         ::testing::Values("q01", "q02", "q04", "q13", "q16",
                                           "q17", "double", "fourstar",
                                           "deepdup"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ---------------------------------------------------------------------------
// Splitter unit suite
// ---------------------------------------------------------------------------

std::vector<TracedEvent> TraceSource(EventSource* src) {
  Result<std::vector<TracedEvent>> out = Trace(src);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? std::move(out.value()) : std::vector<TracedEvent>{};
}

// Forest with repeated names across trees (so later shards need the prefix
// dictionary) and top-level text trees between elements.
std::string SplitterForestXml() {
  return "<a><x>one</x></a>"
         "top"
         "<b><x>two</x><y/></b>"
         "<a>three</a>"
         "mid"
         "<c><z><x>four</x></z></c>"
         "<b/>";
}

TEST(PretokSplitTest, CutAtEveryTopLevelBoundaryReassemblesTheTrace) {
  std::string bytes = Tokenize(SplitterForestXml());

  PretokSource whole(bytes);
  std::vector<TracedEvent> full = TraceSource(&whole);

  // max_shards far beyond the tree count: one shard per top-level tree.
  Result<PretokShardPlan> plan = PlanPretokShards(bytes, 64);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().total_trees, 7u);
  ASSERT_EQ(plan.value().shards.size(), 7u);

  std::vector<TracedEvent> reassembled;
  for (std::size_t i = 0; i < plan.value().shards.size(); ++i) {
    EXPECT_EQ(plan.value().shards[i].trees, 1u);
    PretokShardSource src(&plan.value(), i);
    std::vector<TracedEvent> shard_trace = TraceSource(&src);
    ASSERT_FALSE(shard_trace.empty());
    EXPECT_EQ(shard_trace.back().type, XmlEventType::kEndOfDocument);
    shard_trace.pop_back();  // per-shard eod is synthetic
    reassembled.insert(reassembled.end(), shard_trace.begin(),
                       shard_trace.end());
  }
  reassembled.push_back({XmlEventType::kEndOfDocument, "", ""});
  EXPECT_EQ(reassembled, full);
}

TEST(PretokSplitTest, EveryShardCountReassemblesTheTrace) {
  std::string bytes = Tokenize(SplitterForestXml());
  PretokSource whole(bytes);
  std::vector<TracedEvent> full = TraceSource(&whole);

  for (std::size_t shards = 1; shards <= 9; ++shards) {
    Result<PretokShardPlan> plan = PlanPretokShards(bytes, shards);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const PretokShardPlan& p = plan.value();
    EXPECT_EQ(p.shards.size(), shards < 7 ? shards : 7u);

    // Shards tile the record region contiguously and cover every tree.
    std::size_t trees = 0;
    for (std::size_t i = 0; i < p.shards.size(); ++i) {
      trees += p.shards[i].trees;
      if (i > 0) {
        EXPECT_EQ(p.shards[i].begin, p.shards[i - 1].end);
        EXPECT_GE(p.shards[i].defs_before, p.shards[i - 1].defs_before);
      }
    }
    EXPECT_EQ(trees, p.total_trees);

    std::vector<TracedEvent> reassembled;
    for (std::size_t i = 0; i < p.shards.size(); ++i) {
      PretokShardSource src(&p, i);
      std::vector<TracedEvent> shard_trace = TraceSource(&src);
      shard_trace.pop_back();
      reassembled.insert(reassembled.end(), shard_trace.begin(),
                         shard_trace.end());
    }
    reassembled.push_back({XmlEventType::kEndOfDocument, "", ""});
    EXPECT_EQ(reassembled, full) << "shards=" << shards;
  }
}

TEST(PretokSplitTest, ShardsResolvePrefixDefinitionsIntoConsumerTable) {
  std::string bytes = Tokenize(SplitterForestXml());
  Result<PretokShardPlan> plan = PlanPretokShards(bytes, 64);
  ASSERT_TRUE(plan.ok());
  const PretokShardPlan& p = plan.value();
  // Tree 3 (<a>three</a>) starts after a/x/b/y were defined; its shard must
  // resolve "a" through the prefix dictionary, into the *bound* table.
  const PretokShard& s3 = p.shards[3];
  EXPECT_GT(s3.defs_before, 0u);
  SymbolTable table;
  SymbolId zebra = table.Intern(NodeKind::kElement, "zebra");
  PretokShardSource src(&p, 3);
  src.BindSymbols(&table);
  XmlEvent ev;
  ASSERT_TRUE(src.Next(&ev).ok());
  EXPECT_EQ(ev.type, XmlEventType::kStartElement);
  EXPECT_EQ(ev.name, "a");
  EXPECT_EQ(ev.symbol, table.Find(NodeKind::kElement, "a"));
  EXPECT_NE(ev.symbol, zebra);
}

TEST(PretokSplitTest, EmptyForestYieldsOneEmptyShard) {
  // An empty event stream (header + eod): one engine must still run — the
  // initial state's epsilon rule can produce output on empty input.
  std::string bytes;
  PretokWriter writer(&bytes);
  XmlEvent eod;
  eod.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(writer.Feed(eod).ok());

  Result<PretokShardPlan> plan = PlanPretokShards(bytes, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().shards.size(), 1u);
  EXPECT_EQ(plan.value().total_trees, 0u);

  PretokShardSource src(&plan.value(), 0);
  XmlEvent ev;
  ASSERT_TRUE(src.Next(&ev).ok());
  EXPECT_EQ(ev.type, XmlEventType::kEndOfDocument);

  // The constant query still emits its constant output once.
  auto cq = std::move(
      CompiledQuery::Compile("<out>{ $input/none }</out>").ValueOrDie());
  StringSink out;
  ASSERT_TRUE(cq->StreamShardedPretok(bytes, 4, &out).ok());
  EXPECT_EQ(out.str(), "<out></out>");
}

TEST(PretokSplitTest, RejectsMalformedStreams) {
  EXPECT_FALSE(PlanPretokShards("garbage", 2).ok());
  std::string bytes = Tokenize("<a><b>t</b></a>");
  std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_FALSE(PlanPretokShards(truncated, 2).ok());
  EXPECT_TRUE(PlanPretokShards(bytes, 2).ok());
}

// ---------------------------------------------------------------------------
// StreamMany error handling end to end
// ---------------------------------------------------------------------------

TEST(StreamManyTest, MissingInputSurfacesAsRunError) {
  auto cq = std::move(
      CompiledQuery::Compile("<out>{ $input/a }</out>").ValueOrDie());
  std::vector<ParallelInput> inputs;
  inputs.push_back(ParallelInput::XmlText("<a>1</a>"));
  inputs.push_back(ParallelInput::XmlFile("/nonexistent/xqmft.xml"));
  inputs.push_back(ParallelInput::XmlText("<a>3</a>"));
  ParallelOptions par;
  par.threads = 2;
  StringSink out;
  Status st = cq->StreamMany(inputs, &out, par);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("/nonexistent/xqmft.xml"), std::string::npos);
}

TEST(StreamManyTest, MalformedDocumentAmongManySurfacesItsError) {
  auto cq = std::move(
      CompiledQuery::Compile("<out>{ $input/a }</out>").ValueOrDie());
  std::vector<ParallelInput> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(ParallelInput::XmlText("<a>ok</a>"));
  }
  inputs.push_back(ParallelInput::XmlText("<a><unclosed></a>"));
  ParallelOptions par;
  par.threads = 4;
  StringSink out;
  Status st = cq->StreamMany(inputs, &out, par);
  ASSERT_FALSE(st.ok());
}

}  // namespace
}  // namespace xqmft
