// Tests for the XPath fragment: parser, printer, and the naive evaluator
// (axes, node tests, predicates, document order, dedup).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"
#include "xpath/eval.h"

namespace xqmft {
namespace {

Path MustParsePath(const std::string& s) {
  Result<Path> r = ParsePath(s);
  if (!r.ok()) ADD_FAILURE() << "ParsePath(" << s << "): " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

Forest MustParseXml(const std::string& xml) {
  return std::move(ParseXmlForest(xml).ValueOrDie());
}

// Evaluates a path (anchored at $input) and renders matched subtrees as a
// term for compact assertions.
std::string Matches(const Forest& doc, const std::string& path) {
  Path p = MustParsePath(path);
  std::vector<NodeRef> ms = EvalStepsFromRoot(doc, p.steps);
  std::string out;
  for (const NodeRef& m : ms) {
    if (!out.empty()) out += " | ";
    out += ForestToTerm({m.node()});
  }
  return out;
}

TEST(XPathParserTest, AxesAndAbbreviations) {
  Path p = MustParsePath("$v/a//b/descendant::c/following-sibling::d");
  EXPECT_EQ(p.variable, "v");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[3].axis, Axis::kFollowingSibling);
  EXPECT_EQ(PathToString(p),
            "$v/a/descendant::b/descendant::c/following-sibling::d");
}

TEST(XPathParserTest, NodeTests) {
  Path p = MustParsePath("$v/*/text()/node()/name");
  ASSERT_EQ(p.steps.size(), 4u);
  EXPECT_EQ(p.steps[0].test.kind, NodeTestKind::kAnyElement);
  EXPECT_EQ(p.steps[1].test.kind, NodeTestKind::kText);
  EXPECT_EQ(p.steps[2].test.kind, NodeTestKind::kAnyNode);
  EXPECT_EQ(p.steps[3].test.kind, NodeTestKind::kName);
  EXPECT_EQ(p.steps[3].test.name, "name");
}

TEST(XPathParserTest, LeadingSlashBindsInput) {
  Path p = MustParsePath("/site/people");
  EXPECT_EQ(p.variable, "input");
  EXPECT_EQ(p.steps.size(), 2u);
}

TEST(XPathParserTest, BareVariable) {
  Path p = MustParsePath("$x");
  EXPECT_TRUE(p.IsBareVariable());
}

TEST(XPathParserTest, Predicates) {
  Path p = MustParsePath(
      "$v/a[./b][empty(./c)][./d/text()=\"x\"][./e!=\"y\"]");
  ASSERT_EQ(p.steps.size(), 1u);
  const auto& preds = p.steps[0].predicates;
  ASSERT_EQ(preds.size(), 4u);
  EXPECT_EQ(preds[0].kind, PredicateKind::kExists);
  EXPECT_EQ(preds[1].kind, PredicateKind::kEmpty);
  EXPECT_EQ(preds[2].kind, PredicateKind::kEquals);
  EXPECT_EQ(preds[2].literal, "x");
  EXPECT_EQ(preds[3].kind, PredicateKind::kNotEquals);
  // Comparison without trailing text() is normalized to end in text().
  EXPECT_EQ(preds[3].path.back().test.kind, NodeTestKind::kText);
}

TEST(XPathParserTest, NestedPredicates) {
  // Q4's shape: a comparison predicate whose path contains a nested
  // existence predicate and a following-sibling step.
  Path p = MustParsePath(
      "$input/open_auction[./bidder[./personref/text()=\"personXX\"]"
      "/following-sibling::bidder/personref/text()=\"personYY\"]");
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const Predicate& outer = p.steps[0].predicates[0];
  EXPECT_EQ(outer.kind, PredicateKind::kEquals);
  ASSERT_GE(outer.path.size(), 2u);
  EXPECT_EQ(outer.path[0].predicates.size(), 1u);
  EXPECT_EQ(outer.path[1].axis, Axis::kFollowingSibling);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParsePath("site/a").ok());       // no $var or '/'
  EXPECT_FALSE(ParsePath("$v/").ok());          // missing node test
  EXPECT_FALSE(ParsePath("$v/a[").ok());        // unterminated predicate
  EXPECT_FALSE(ParsePath("$v/foo()").ok());     // unknown () test
  EXPECT_FALSE(ParsePath("$v/a[./b=\"x]").ok());// unterminated literal
  EXPECT_FALSE(ParsePath("$v/a extra").ok());   // trailing junk
}

TEST(XPathEvalTest, ChildAxis) {
  Forest doc = MustParseXml("<r><a>1</a><b/><a><a>2</a></a></r>");
  EXPECT_EQ(Matches(doc, "$input/r/a"), "a(\"1\") | a(a(\"2\"))");
}

TEST(XPathEvalTest, DescendantAxisPreOrderAndDedup) {
  Forest doc = MustParseXml("<r><a><a><a/></a></a></r>");
  // //a matches all three a-nodes, each exactly once, outermost first.
  EXPECT_EQ(Matches(doc, "$input//a"), "a(a(a)) | a(a) | a");
}

TEST(XPathEvalTest, DescendantThenChild) {
  Forest doc = MustParseXml(
      "<doc><a><b><c/></b></a><x><a><b/></a></x></doc>");
  EXPECT_EQ(Matches(doc, "$input//a/b"), "b(c) | b");
}

TEST(XPathEvalTest, FollowingSibling) {
  Forest doc = MustParseXml("<r><b>1</b><a/><b>2</b><c/><b>3</b></r>");
  EXPECT_EQ(Matches(doc, "$input/r/a/following-sibling::b"),
            "b(\"2\") | b(\"3\")");
}

TEST(XPathEvalTest, FollowingSiblingOfMultipleContexts) {
  Forest doc = MustParseXml("<r><a/><b>1</b><a/><b>2</b></r>");
  // Both a's contribute; b2 reachable from both but appears once.
  EXPECT_EQ(Matches(doc, "$input/r/a/following-sibling::b"),
            "b(\"1\") | b(\"2\")");
}

TEST(XPathEvalTest, TextAndStarTests) {
  Forest doc = MustParseXml("<r>t1<a>t2</a></r>");
  EXPECT_EQ(Matches(doc, "$input/r/text()"), "\"t1\"");
  EXPECT_EQ(Matches(doc, "$input/r/*"), "a(\"t2\")");
  EXPECT_EQ(Matches(doc, "$input/r/node()"), "\"t1\" | a(\"t2\")");
  // * does not match text nodes.
  EXPECT_EQ(Matches(doc, "$input/r/*/text()"), "\"t2\"");
}

TEST(XPathEvalTest, FourStarCornerCase) {
  // The fourstar benchmark's //*//*//*//* selects elements with at least
  // four element ancestors-or-self on a chain: on a depth-5 chain, d and e.
  Forest doc = MustParseXml("<a><b><c><d><e/></d></c></b></a>");
  EXPECT_EQ(Matches(doc, "$input//*//*//*//*"), "d(e) | e");
  Forest shallow = MustParseXml("<a><b><c/></b></a>");
  EXPECT_EQ(Matches(shallow, "$input//*//*//*//*"), "");
}

TEST(XPathEvalTest, ExistencePredicate) {
  Forest doc = MustParseXml("<r><p><q/></p><p/><p><q/></p></r>");
  EXPECT_EQ(Matches(doc, "$input/r/p[./q]"), "p(q) | p(q)");
}

TEST(XPathEvalTest, EmptyPredicate) {
  Forest doc = MustParseXml("<r><p><h>x</h></p><p/><p><h/></p></r>");
  // Q17's shape: empty(./h/text()) — true when no h text exists.
  EXPECT_EQ(Matches(doc, "$input/r/p[empty(./h/text())]"), "p | p(h)");
}

TEST(XPathEvalTest, EqualsPredicate) {
  Forest doc = MustParseXml(
      "<r><p><id>person0</id></p><p><id>person1</id></p></r>");
  EXPECT_EQ(Matches(doc, "$input/r/p[./id/text()=\"person0\"]"),
            "p(id(\"person0\"))");
  // Normalized comparison without explicit text().
  EXPECT_EQ(Matches(doc, "$input/r/p[./id=\"person0\"]"),
            "p(id(\"person0\"))");
}

TEST(XPathEvalTest, NotEqualsIsExistential) {
  Forest doc = MustParseXml(
      "<r><p><id>a</id><id>b</id></p><p><id>a</id></p></r>");
  // p1 has some id text != "a" (namely "b"); p2 does not.
  EXPECT_EQ(Matches(doc, "$input/r/p[./id/text()!=\"a\"]"),
            "p(id(\"a\") id(\"b\"))");
}

TEST(XPathEvalTest, MultiplePredicatesAreConjunctive) {
  Forest doc = MustParseXml(
      "<r><p><q/><s/></p><p><q/></p><p><s/></p></r>");
  EXPECT_EQ(Matches(doc, "$input/r/p[./q][./s]"), "p(q s)");
}

TEST(XPathEvalTest, NestedPredicateWithFollowingSibling) {
  // The Q4 pattern. open_auction matches iff some bidder with person "XX"
  // has a later bidder with person "YY".
  Forest doc = MustParseXml(
      "<site>"
      "<oa><bidder><pr>XX</pr></bidder><bidder><pr>YY</pr></bidder></oa>"
      "<oa><bidder><pr>YY</pr></bidder><bidder><pr>XX</pr></bidder></oa>"
      "<oa><bidder><pr>XX</pr></bidder></oa>"
      "</site>");
  EXPECT_EQ(
      Matches(doc,
              "$input/site/oa[./bidder[./pr/text()=\"XX\"]"
              "/following-sibling::bidder/pr/text()=\"YY\"]"),
      "oa(bidder(pr(\"XX\")) bidder(pr(\"YY\")))");
}

TEST(XPathEvalTest, PredicateOnIntermediateStep) {
  Forest doc = MustParseXml(
      "<r><g><flag/><v>1</v></g><g><v>2</v></g></r>");
  EXPECT_EQ(Matches(doc, "$input/r/g[./flag]/v"), "v(\"1\")");
}

TEST(XPathEvalTest, EmptyResultOnNoMatch) {
  Forest doc = MustParseXml("<r><a/></r>");
  EXPECT_EQ(Matches(doc, "$input/zzz"), "");
  EXPECT_EQ(Matches(doc, "$input/r/zzz"), "");
}

TEST(XPathEvalTest, EvalFromNodeRestrictsToSubtree) {
  Forest doc = MustParseXml("<r><a><b>1</b></a><b>2</b></r>");
  // Context = the a-node; //b only finds b inside a.
  Path p = MustParsePath("$v//b");
  const Forest& r_children = doc[0].children;
  NodeRef a{&r_children, 0};
  std::vector<NodeRef> ms = EvalStepsFromNode(doc, a, p.steps);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].node().children[0].label, "1");
}

TEST(XPathEvalTest, PredicateDirectEval) {
  Forest doc = MustParseXml("<r><p><id>x</id></p></r>");
  Path p = MustParsePath("$v/dummy[./id/text()=\"x\"]");
  ASSERT_EQ(p.steps.size(), 1u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  NodeRef pnode{&doc[0].children, 0};  // the <p> node
  EXPECT_TRUE(EvalPredicate(doc, pnode, p.steps[0].predicates[0]));
  Path p2 = MustParsePath("$v/dummy[./id/text()=\"y\"]");
  EXPECT_FALSE(EvalPredicate(doc, pnode, p2.steps[0].predicates[0]));
}

}  // namespace
}  // namespace xqmft
