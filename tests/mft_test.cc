// Tests for the MFT model, the textual rule parser/printer, and the
// reference interpreter, including the paper's worked Mperson example
// (Section 2.2).
#include <gtest/gtest.h>

#include <string>

#include "mft/interp.h"
#include "mft/mft.h"
#include "util/rng.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

// The paper's Mperson transducer, verbatim (Section 2.2), in the textual
// syntax. q3 matches the text symbol "person0".
const char* kMpersonRules = R"(
q0(%) -> out(q1(x0))
q1(person(x1)x2) -> q2(x1, q4(x1)) q1(x2)
q1(%t(x1)x2) -> q1(x1) q1(x2)
q1(eps) -> eps
q2(p_id(x1)x2, y1) -> q3(x1, y1, q2(x2, y1))
q2(%t(x1)x2, y1) -> q2(x2, y1)
q2(eps, y1) -> eps
q3("person0"(x1)x2, y1, y2) -> y1
q3(%t(x1)x2, y1, y2) -> q3(x2, y1, y2)
q3(eps, y1, y2) -> y2
q4(name(x1)x2) -> q5(x1) q4(x2)
q4(%t(x1)x2) -> q4(x2)
q4(eps) -> eps
q5(%ttext(x1)x2) -> %t(eps) q5(x2)
q5(%t(x1)x2) -> q5(x2)
q5(eps) -> eps
)";

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) {
    ADD_FAILURE() << "ParseMft failed: " << r.status().ToString();
  }
  return std::move(r).ValueOrDie();
}

Forest MustParseXml(const std::string& xml) {
  return std::move(ParseXmlForest(xml).ValueOrDie());
}

std::string RunToTerm(const Mft& mft, const Forest& input) {
  Result<Forest> out = RunMft(mft, input);
  if (!out.ok()) {
    ADD_FAILURE() << "RunMft failed: " << out.status().ToString();
    return "";
  }
  return ForestToTerm(out.value());
}

TEST(MftModelTest, StateAccounting) {
  Mft m;
  StateId q0 = m.AddState("q0", 0);
  StateId q1 = m.AddState("q1", 2);
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_EQ(m.rank(q0), 1);
  EXPECT_EQ(m.rank(q1), 3);
  EXPECT_EQ(m.num_params(q1), 2);
  EXPECT_EQ(m.state_name(q1), "q1");
  EXPECT_FALSE(m.IsForestTransducer());
}

TEST(MftModelTest, LookupOrderExactThenTextThenDefault) {
  Mft m;
  StateId q = m.AddState("q", 0);
  m.set_initial_state(q);
  m.SetSymbolRule(q, Symbol::Element("a"), {RhsNode::Label(Symbol::Element("A"))});
  m.SetSymbolRule(q, Symbol::Text("a"), {RhsNode::Label(Symbol::Element("TA"))});
  m.SetTextRule(q, {RhsNode::Label(Symbol::Element("T"))});
  m.SetDefaultRule(q, {RhsNode::Label(Symbol::Element("D"))});
  m.SetEpsilonRule(q, {});
  ASSERT_TRUE(m.Validate().ok());

  // Element "a" hits the element symbol rule.
  EXPECT_EQ((*m.LookupRule(q, NodeKind::kElement, "a"))[0].symbol.name, "A");
  // Text "a" hits the *text* symbol rule, not the element one.
  EXPECT_EQ((*m.LookupRule(q, NodeKind::kText, "a"))[0].symbol.name, "TA");
  // Other text hits the text rule.
  EXPECT_EQ((*m.LookupRule(q, NodeKind::kText, "zzz"))[0].symbol.name, "T");
  // Other elements hit the default rule.
  EXPECT_EQ((*m.LookupRule(q, NodeKind::kElement, "zzz"))[0].symbol.name, "D");
}

TEST(MftModelTest, ValidateRejectsMissingRules) {
  Mft m;
  StateId q = m.AddState("q", 0);
  m.set_initial_state(q);
  EXPECT_FALSE(m.Validate().ok());  // no default/epsilon
  m.SetDefaultRule(q, {});
  EXPECT_FALSE(m.Validate().ok());  // no epsilon
  m.SetEpsilonRule(q, {});
  EXPECT_TRUE(m.Validate().ok());
}

TEST(MftModelTest, ValidateRejectsBadArity) {
  Mft m;
  StateId q0 = m.AddState("q0", 0);
  StateId q1 = m.AddState("q1", 1);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, {RhsNode::Call(q1, InputVar::kX1, {})});  // missing arg
  m.SetEpsilonRule(q0, {});
  m.SetDefaultRule(q1, {});
  m.SetEpsilonRule(q1, {});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MftModelTest, ValidateRejectsX1InEpsilonRule) {
  Mft m;
  StateId q0 = m.AddState("q0", 0);
  m.set_initial_state(q0);
  m.SetDefaultRule(m.initial_state(), {});
  m.SetEpsilonRule(q0, {RhsNode::Call(q0, InputVar::kX1, {})});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MftModelTest, ValidateRejectsCurrentLabelInEpsilonRule) {
  Mft m;
  StateId q0 = m.AddState("q0", 0);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, {});
  m.SetEpsilonRule(q0, {RhsNode::CurrentLabel()});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MftModelTest, ValidateRejectsNonNullaryInitialState) {
  Mft m;
  StateId q0 = m.AddState("q0", 1);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, {});
  m.SetEpsilonRule(q0, {});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MftModelTest, ValidateRejectsParamOutOfRange) {
  Mft m;
  StateId q0 = m.AddState("q0", 0);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, {RhsNode::Param(1)});  // q0 has no parameters
  m.SetEpsilonRule(q0, {});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MftModelTest, SizeCountsAlphabetAndRules) {
  // qcopy: 2 rules. |Sigma| = 0 (only %t). lhs sizes: 4 + 0 and 2 + 0;
  // rhs sizes: %t(qcopy(x1)) qcopy(x2) = 3; eps = 0. Total 4+3+2+0 = 9.
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  EXPECT_EQ(m.Size(), 9u);
  EXPECT_TRUE(m.IsForestTransducer());
}

TEST(MftParserTest, RanksInferredAndChecked) {
  Mft m = MustParseMft(kMpersonRules);
  EXPECT_EQ(m.num_states(), 6);
  EXPECT_TRUE(m.Validate().ok());
  // 17 rules: the q0(%) shorthand installs both a default and an epsilon
  // rule; q1/q2/q4/q5 have 3 rules each and q3 has 3.
  EXPECT_EQ(m.NumRules(), 17u);
  // q3 has two parameters.
  bool found = false;
  for (StateId q = 0; q < m.num_states(); ++q) {
    if (m.state_name(q) == "q3") {
      EXPECT_EQ(m.num_params(q), 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MftParserTest, RejectsInconsistentRank) {
  EXPECT_FALSE(ParseMft("q(%t(x1)x2, y1) -> q(x2)\nq(eps, y1) -> eps\n").ok());
}

TEST(MftParserTest, RejectsOutOfOrderParams) {
  EXPECT_FALSE(ParseMft("q(%t(x1)x2, y2) -> eps\n").ok());
}

TEST(MftParserTest, RejectsMissingDefault) {
  EXPECT_FALSE(ParseMft("q(a(x1)x2) -> eps\nq(eps) -> eps\n").ok());
}

TEST(MftParserTest, RejectsBadPattern) {
  EXPECT_FALSE(ParseMft("q(a(x2)x1) -> eps\n").ok());
  EXPECT_FALSE(ParseMft("q(a) -> eps\n").ok());
}

TEST(MftParserTest, PrintParseRoundTrip) {
  Mft m = MustParseMft(kMpersonRules);
  std::string printed = m.ToString();
  Mft m2 = MustParseMft(printed);
  // Round trip stabilizes: printing again yields the same text.
  EXPECT_EQ(m2.ToString(), printed);
  EXPECT_EQ(m2.num_states(), m.num_states());
  EXPECT_EQ(m2.NumRules(), m.NumRules());
}

TEST(MftInterpTest, CopyTransducerIsIdentity) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  Forest f = MustParseXml("<a><b x=\"1\">t</b><c/></a><d/>");
  Result<Forest> out = RunMft(m, f);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), f);
}

// Section 2.2's worked example: Mperson on the "Jim/Li" person document.
TEST(MftInterpTest, PaperMpersonExample) {
  Mft m = MustParseMft(kMpersonRules);
  ASSERT_TRUE(m.Validate().ok());
  Forest input = MustParseXml(
      "<person><p_id><a/>person0</p_id><name>Jim</name><c/>"
      "<name>Li</name></person>");
  EXPECT_EQ(RunToTerm(m, input), "out(\"Jim\" \"Li\")");
  // Serialized, adjacent text concatenates: <out>JimLi</out> (the paper's
  // remark about sibling text nodes).
  Forest out = std::move(RunMft(m, input)).ValueOrDie();
  EXPECT_EQ(ForestToXml(out), "<out>JimLi</out>");
}

// The paper's second Mperson input: the filter fails on the first p_id
// ("perso7") and the second parameter of q3 resumes the scan, finding the
// second p_id ("person0").
TEST(MftInterpTest, PaperMpersonElseBranch) {
  Mft m = MustParseMft(kMpersonRules);
  Forest input = MustParseXml(
      "<person><p_id><a/>perso7</p_id><name>Jim</name><c/>"
      "<p_id>person0</p_id></person>");
  EXPECT_EQ(RunToTerm(m, input), "out(\"Jim\")");
}

TEST(MftInterpTest, MpersonNoMatchYieldsEmptyOut) {
  Mft m = MustParseMft(kMpersonRules);
  Forest input = MustParseXml("<person><p_id>nobody</p_id><name>X</name></person>");
  EXPECT_EQ(RunToTerm(m, input), "out");
  Forest no_person = MustParseXml("<doc><name>X</name></doc>");
  // q1 recurses through non-person nodes; no person node -> empty out.
  EXPECT_EQ(RunToTerm(m, no_person), "out");
}

TEST(MftInterpTest, MpersonFindsNestedPersons) {
  // q1's default rule descends into x1 *and* x2, so nested persons match.
  Mft m = MustParseMft(kMpersonRules);
  Forest input = MustParseXml(
      "<doc><person><p_id>person0</p_id><name>A</name></person>"
      "<deep><person><p_id>person0</p_id><name>B</name></person></deep></doc>");
  EXPECT_EQ(RunToTerm(m, input), "out(\"A\" \"B\")");
}

TEST(MftInterpTest, ParametersPassByValue) {
  // q duplicates its parameter: y1 y1. The doubling transducer from
  // Section 4.2's FT-composition discussion, with parameters.
  Mft m = MustParseMft(
      "q0(%) -> q(x0, mark)\n"
      "q(a(x1)x2, y1) -> y1 y1 q(x2, y1)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  Forest input = MustParseXml("<a/><a/>");
  EXPECT_EQ(RunToTerm(m, input), "mark mark mark mark");
}

TEST(MftInterpTest, CurrentLabelCopiesKindAndName) {
  // Rename-everything-to-itself via %t, wrapping text in <t>.
  Mft m = MustParseMft(
      "q0(%t(x1)x2) -> %t(q0(x1)) q0(x2)\n"
      "q0(eps) -> eps\n");
  Forest input = MustParseXml("<x>hello</x>");
  Result<Forest> out = RunMft(m, input);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ(out.value()[0].children[0].kind, NodeKind::kText);
  EXPECT_EQ(out.value()[0].children[0].label, "hello");
}

TEST(MftInterpTest, StepBudgetCatchesDivergence) {
  // A stay loop: q(eps) -> q(x0). The paper notes such MFTs do not
  // terminate; the interpreter must fail cleanly instead of hanging.
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> q(x0)\n");
  InterpOptions opts;
  opts.max_steps = 10'000;
  Result<Forest> out = RunMft(m, {}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(MftInterpTest, StayLoopDetectedBeforeStackOverflow) {
  // Same stay loop with the default 50M step budget: the recursive
  // interpreter would blow the C++ stack long before 50M applications, so
  // the stay-chain detector must fail the run cleanly instead.
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> q(x0)\n");
  Result<Forest> out = RunMft(m, {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(MftInterpTest, StayLoopGuardAllowsWideInputs) {
  // The guard must only count no-progress moves: sibling (x2) recursion is
  // input progress, so a flat forest of thousands of elements — depth far
  // beyond any fixed recursion cap — still evaluates.
  Mft id = MustParseMft(
      "q(%t(x1)x2) -> %t(q(x1)) q(x2)\n"
      "q(%ttext(x1)x2) -> %t(eps) q(x2)\n"
      "q(eps) -> eps\n");
  Forest wide;
  for (int i = 0; i < 3000; ++i) wide.push_back(Tree::Element("e"));
  Result<Forest> out = RunMft(id, wide);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().size(), 3000u);
}

TEST(MftInterpTest, ExponentialDoublingTransducer) {
  // Section 4.2: q(a(x1,x2)) -> q(x2)q(x2); translates n a-nodes into 2^n
  // a-leaves. Forest version.
  Mft m = MustParseMft(
      "q(a(x1)x2) -> q(x2) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> a\n");
  Forest input = std::move(ParseTerm("a a a a").ValueOrDie());
  Result<Forest> out = RunMft(m, input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 16u);  // 2^4
}

// Property: the copy transducer is the identity on random forests.
class MftCopyProperty : public ::testing::TestWithParam<int> {};

TEST_P(MftCopyProperty, IdentityOnRandomForests) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  Rng rng(GetParam());
  std::function<Forest(int)> gen = [&](int depth) -> Forest {
    Forest f;
    int width = static_cast<int>(rng.Below(4));
    for (int i = 0; i < width; ++i) {
      if (depth > 0 && rng.Chance(1, 2)) {
        f.push_back(Tree::Element(std::string(1, static_cast<char>('a' + rng.Below(4))),
                                  gen(depth - 1)));
      } else {
        f.push_back(Tree::Text("t" + std::to_string(rng.Below(10))));
      }
    }
    return f;
  };
  Forest f = gen(4);
  Result<Forest> out = RunMft(m, f);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MftCopyProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace xqmft
