// Tests for the XML substrate: forest model, term notation, SAX parser,
// attribute encoding, sinks, and parse/serialize round-trips (including a
// randomized property sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "event_trace_util.h"
#include "util/rng.h"
#include "xml/char_class.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

TEST(ForestTest, SizeAndDepth) {
  Forest f = std::move(ParseTerm("a(b(c) d) e").ValueOrDie());
  EXPECT_EQ(ForestSize(f), 5u);
  EXPECT_EQ(ForestDepth(f), 3u);
  EXPECT_EQ(ForestSize({}), 0u);
  EXPECT_EQ(ForestDepth({}), 0u);
}

TEST(ForestTest, TermRoundTrip) {
  const std::string term = "a(b(\"x y\") c) \"top\" d";
  Forest f = std::move(ParseTerm(term).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), term);
}

TEST(ForestTest, TermParseErrors) {
  EXPECT_FALSE(ParseTerm("a(").ok());
  EXPECT_FALSE(ParseTerm("a)").ok());
  EXPECT_FALSE(ParseTerm("\"unterminated").ok());
  EXPECT_FALSE(ParseTerm("a((b)").ok());
}

TEST(ForestTest, TermQuotedEscapes) {
  Forest f = std::move(ParseTerm(R"( "a\"b\\c" )").ValueOrDie());
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].label, "a\"b\\c");
  // Round-trips through printing.
  Forest g = std::move(ParseTerm(ForestToTerm(f)).ValueOrDie());
  EXPECT_EQ(f, g);
}

TEST(ForestTest, XmlSerialization) {
  Forest f = std::move(ParseTerm("book(isbn(\"123\") title(\"A&B\"))").ValueOrDie());
  EXPECT_EQ(ForestToXml(f),
            "<book><isbn>123</isbn><title>A&amp;B</title></book>");
}

TEST(ForestTest, EmptyElementSerializesSelfClosing) {
  Forest f = std::move(ParseTerm("a(b c(d))").ValueOrDie());
  EXPECT_EQ(ForestToXml(f), "<a><b/><c><d/></c></a>");
}

TEST(SaxTest, PaperBookExample) {
  // The Section 2 example: attributes become leading child elements with a
  // text child (Figure 1's forest).
  const char* xml =
      "<book isbn=\"123\" price=\"$99\"><author>Knuth</author>"
      "<title>Art of Programming</title></book>";
  Forest f = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f),
            "book(isbn(\"123\") price(\"$99\") author(\"Knuth\") "
            "title(\"Art of Programming\"))");
}

TEST(SaxTest, SelfClosingAndNesting) {
  Forest f = std::move(
      ParseXmlForest("<doc><a><b/><b/></a><c/></doc>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "doc(a(b b) c)");
}

TEST(SaxTest, EntityDecoding) {
  Forest f = std::move(ParseXmlForest(
      "<t>&lt;x&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</t>")
                           .ValueOrDie());
  ASSERT_EQ(f.size(), 1u);
  ASSERT_EQ(f[0].children.size(), 1u);
  EXPECT_EQ(f[0].children[0].label, "<x> & \"q\" 'a' AB");
}

TEST(SaxTest, CommentsAndPIsAndDoctypeSkipped) {
  const char* xml =
      "<?xml version=\"1.0\"?><!DOCTYPE doc [<!ELEMENT doc ANY>]>"
      "<!-- a comment --><doc><!-- inner --><a/></doc>";
  Forest f = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "doc(a)");
}

TEST(SaxTest, CdataBecomesText) {
  Forest f = std::move(
      ParseXmlForest("<t><![CDATA[a<b&c]]></t>").ValueOrDie());
  EXPECT_EQ(f[0].children[0].label, "a<b&c");
}

TEST(SaxTest, CdataMergesWithAdjacentText) {
  Forest f = std::move(
      ParseXmlForest("<t>pre<![CDATA[mid]]>post</t>").ValueOrDie());
  ASSERT_EQ(f[0].children.size(), 1u);
  EXPECT_EQ(f[0].children[0].label, "premidpost");
}

TEST(SaxTest, WhitespaceSkippingByDefault) {
  Forest f = std::move(
      ParseXmlForest("<a>\n  <b> x </b>\n</a>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(b(\" x \"))");
}

TEST(SaxTest, WhitespaceKeptWhenConfigured) {
  SaxOptions opts;
  opts.skip_whitespace_text = false;
  Forest f = std::move(ParseXmlForest("<a> <b/></a>", opts).ValueOrDie());
  ASSERT_EQ(f[0].children.size(), 2u);
  EXPECT_EQ(f[0].children[0].kind, NodeKind::kText);
}

TEST(SaxTest, AttributeExpansionCanBeDisabled) {
  SaxOptions opts;
  opts.expand_attributes = false;
  StringSource src("<a x=\"1\" y='two'><b/></a>");
  SaxParser p(&src, opts);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());
  EXPECT_EQ(ev.type, XmlEventType::kStartElement);
  ASSERT_EQ(ev.attr_count, 2u);
  EXPECT_EQ(ev.attrs[0].name, "x");
  EXPECT_EQ(ev.attrs[0].value, "1");
  EXPECT_EQ(ev.attrs[1].name, "y");
  EXPECT_EQ(ev.attrs[1].value, "two");
  // Attribute-free events do not carry a span.
  ASSERT_TRUE(p.Next(&ev).ok());  // <b/>
  EXPECT_EQ(ev.type, XmlEventType::kStartElement);
  EXPECT_EQ(ev.attr_count, 0u);
  EXPECT_EQ(ev.attrs, nullptr);
}

TEST(SaxTest, ErrorMismatchedTags) {
  EXPECT_FALSE(ParseXmlForest("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXmlForest("<a>").ok());
  EXPECT_FALSE(ParseXmlForest("</a>").ok());
}

TEST(SaxTest, ErrorMalformedMarkup) {
  EXPECT_FALSE(ParseXmlForest("<a b></a>").ok());        // attr without value
  EXPECT_FALSE(ParseXmlForest("<a b=c></a>").ok());      // unquoted value
  EXPECT_FALSE(ParseXmlForest("<a>&unknown;</a>").ok()); // unknown entity
  EXPECT_FALSE(ParseXmlForest("<1a/>").ok());            // bad name start
}

TEST(SaxTest, ErrorsReportLineAndColumn) {
  // The mismatched end tag starts on line 3. Its "</b>" begins at column 4
  // ("  x" precedes it); the parser reports the position after reading the
  // tag, column 8 — the regression this guards is the offset being lost
  // entirely, so the assertion pins the exact line and column.
  Status st = ParseXmlForest("<a>\n<c></c>\n  x</b>\n</a>").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3, column 8"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("byte 19"), std::string::npos) << st.message();

  // Errors on the first line: column counts from 1.
  Status first = ParseXmlForest("<1a/>").status();
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("line 1, column 2"), std::string::npos)
      << first.message();
}

TEST(SaxTest, ParserTracksPosition) {
  StringSource src("<a>\nhi</a>");
  SaxParser p(&src);
  EXPECT_EQ(p.line(), 1u);
  EXPECT_EQ(p.column(), 1u);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());  // <a>
  EXPECT_EQ(p.line(), 1u);
  EXPECT_EQ(p.column(), 4u);
  ASSERT_TRUE(p.Next(&ev).ok());  // text "hi" (reads up to '<')
  EXPECT_EQ(p.line(), 2u);
  EXPECT_EQ(p.column(), 3u);
}

TEST(SaxTest, MultipleTopLevelTreesFormAForest) {
  Forest f = std::move(ParseXmlForest("<a/><b/><c>t</c>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a b c(\"t\")");
}

TEST(SaxTest, SingleQuotedAttributes) {
  Forest f = std::move(ParseXmlForest("<a x='v'/>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(x(\"v\"))");
}

TEST(SaxTest, EmptyAttributeValueYieldsEmptyElement) {
  Forest f = std::move(ParseXmlForest("<a x=\"\"/>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(x)");
}

// ---- Chunk-boundary robustness: every construct split at every offset. ----

// TracedEvent / Trace() / ChunkedSource live in event_trace_util.h, shared
// with the pretok suite so both differential tests compare the same trace.

// The conformance corpus: every lexer state (tags, attributes + expansion,
// entities in text and attr values, CDATA with ]]-lookahead, comments, PIs,
// DOCTYPE with internal subset, long names/runs) so the refill sweep splits
// each of them at every possible byte offset.
const char* const kConformanceCorpus[] = {
    "<a><b/><b/></a>",
    "<book isbn=\"123\" price=\"$99\"><author>Knuth</author></book>",
    "<t>&lt;x&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</t>",
    "<t>pre<![CDATA[mid ]] >]]]>post</t>",
    "<?xml version=\"1.0\"?><!DOCTYPE d [<!ELEMENT d ANY>]><d><!-- c --><a/>"
    "</d>",
    "<a x='v &amp; w' y=\"\"/>",
    "<longer_element_name_than_any_refill_window_is_wide_in_this_sweep>"
    "text that also runs longer than the smallest windows do"
    "</longer_element_name_than_any_refill_window_is_wide_in_this_sweep>",
    "<a>\n  <b> x </b>\n</a>",
    "<a/><b/><c>t</c>",
    "<m><!-- dashes -- - ---><p></p><?pi with ? marks ?></m>",
};

TEST(SaxChunkTest, CorpusIdenticalAtEveryRefillSize) {
  for (const char* xml : kConformanceCorpus) {
    StringSource whole(xml);
    auto expected = std::move(Trace(&whole).ValueOrDie());
    for (std::size_t chunk = 1; chunk <= 64; ++chunk) {
      ChunkedSource src(xml, chunk);
      Result<std::vector<TracedEvent>> got = Trace(&src);
      ASSERT_TRUE(got.ok()) << xml << " chunk=" << chunk << ": "
                            << got.status().ToString();
      EXPECT_EQ(got.value(), expected) << xml << " chunk=" << chunk;
    }
  }
}

TEST(SaxChunkTest, ErrorsStillDetectedAtEveryRefillSize) {
  const char* bad[] = {"<a><b></a></b>", "<a>&unknown;</a>", "<a x=1/>",
                       "<a><![CDATA[never closed", "<a>unclosed"};
  for (const char* xml : bad) {
    for (std::size_t chunk : {std::size_t(1), std::size_t(3), std::size_t(7)}) {
      ChunkedSource src(xml, chunk);
      SaxParser parser(&src);
      XmlEvent ev;
      Status st;
      do {
        st = parser.Next(&ev);
      } while (st.ok() && ev.type != XmlEventType::kEndOfDocument);
      EXPECT_FALSE(st.ok()) << xml << " chunk=" << chunk;
    }
  }
}

// ---- The zero-copy event contract. ----

bool ViewWithin(std::string_view view, std::string_view region) {
  return view.data() >= region.data() &&
         view.data() + view.size() <= region.data() + region.size();
}

TEST(SaxViewTest, MappedTextIsZeroCopy) {
  // Over an in-memory (Contents-capable) source, a plain text run must alias
  // the input bytes — no copy on the fast path.
  const std::string xml = "<a>hello world</a>";
  StringSource src(xml);
  SaxParser p(&src);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());  // <a>
  ASSERT_TRUE(p.Next(&ev).ok());  // text
  ASSERT_EQ(ev.type, XmlEventType::kText);
  EXPECT_EQ(ev.text, "hello world");
  EXPECT_TRUE(ViewWithin(ev.text, xml)) << "text was copied";
}

TEST(SaxViewTest, EntityTextSpillsOutOfTheInput) {
  const std::string xml = "<a>x&amp;y</a>";
  StringSource src(xml);
  SaxParser p(&src);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());  // <a>
  ASSERT_TRUE(p.Next(&ev).ok());  // text
  ASSERT_EQ(ev.type, XmlEventType::kText);
  EXPECT_EQ(ev.text, "x&y");
  EXPECT_FALSE(ViewWithin(ev.text, xml)) << "decoded text cannot alias input";
}

TEST(SaxViewTest, NamesAliasTheSymbolTable) {
  // Name views point into the parser's symbol table, so they stay valid for
  // the parser's lifetime even across refills.
  ChunkedSource src("<abc><d/></abc>", 2);
  SaxParser p(&src);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());
  std::string_view abc = ev.name;
  EXPECT_EQ(abc, "abc");
  ASSERT_TRUE(p.Next(&ev).ok());  // <d/> — a refill happened meanwhile
  EXPECT_EQ(ev.name, "d");
  EXPECT_EQ(abc, "abc");  // still valid: table-backed
  EXPECT_EQ(p.symbols().name(p.symbols().Find(NodeKind::kElement, "abc")),
            abc);
}

TEST(SaxViewTest, ViewsStableUntilNextAndReplacedAfter) {
  // The contract: an event's views are valid until the next Next() call.
  // Copies taken before the next pull must equal the reference trace even
  // at the smallest window size, where every run spills.
  const char* xml = "<r><p>one</p><p a=\"v\">two&amp;2</p></r>";
  StringSource whole(xml);
  auto expected = std::move(Trace(&whole).ValueOrDie());
  ChunkedSource src(xml, 1);
  Result<std::vector<TracedEvent>> got = Trace(&src);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected);
}

TEST(SaxViewTest, AttrValueViewsSurviveUntilDrained) {
  // Attribute values live in the parser's tag arena: the synthetic
  // attribute events of one tag must all be readable as they drain, not
  // just the last one.
  StringSource src("<a x=\"1\" y=\"22\" z=\"333\"/>");
  SaxParser p(&src);
  std::vector<std::string> texts;
  XmlEvent ev;
  do {
    ASSERT_TRUE(p.Next(&ev).ok());
    if (ev.type == XmlEventType::kText) texts.emplace_back(ev.text);
  } while (ev.type != XmlEventType::kEndOfDocument);
  EXPECT_EQ(texts, (std::vector<std::string>{"1", "22", "333"}));
}

// ---- MmapSource ----

TEST(MmapSourceTest, ParsesLikeInMemory) {
  const std::string xml = "<doc><a k=\"v\">text</a><b/></doc>";
  std::string path = ::testing::TempDir() + "/xqmft_mmap_test.xml";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(xml.data(), 1, xml.size(), f);
  std::fclose(f);

  Forest from_file = std::move(ParseXmlFile(path).ValueOrDie());
  Forest from_mem = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(from_file, from_mem);

  // The source reports a stable whole-input region (the mapping).
  auto src = std::move(MmapSource::Open(path).ValueOrDie());
  std::string_view all;
  ASSERT_TRUE(src->Contents(&all));
  EXPECT_EQ(all, xml);
  std::remove(path.c_str());
}

TEST(MmapSourceTest, MissingFileFails) {
  EXPECT_FALSE(MmapSource::Open("/nonexistent/xqmft/nope.xml").ok());
}

TEST(SinkTest, StringSinkSerializes) {
  StringSink sink;
  sink.StartElement("a");
  sink.Text("x<y");
  sink.StartElement("b");
  sink.EndElement("b");
  sink.EndElement("a");
  EXPECT_EQ(sink.str(), "<a>x&lt;y<b></b></a>");
}

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink;
  sink.StartElement("a");
  sink.Text("hello");
  sink.EndElement("a");
  EXPECT_EQ(sink.elements(), 1u);
  EXPECT_EQ(sink.texts(), 1u);
  EXPECT_GT(sink.bytes(), 5u);
}

TEST(SinkTest, CountingSinkMatchesStringSinkBytes) {
  // Regression: CountingSink used to charge raw text sizes while
  // StringSink/FileSink serialize *escaped* text — the two must agree on
  // every balanced stream, including content that needs escaping.
  CountingSink counting;
  StringSink str;
  for (OutputSink* sink : {static_cast<OutputSink*>(&counting),
                           static_cast<OutputSink*>(&str)}) {
    sink->StartElement("r");
    sink->Text("a & b < c > d");
    sink->StartElement("item");
    sink->Text("plain");
    sink->EndElement("item");
    sink->Text("&&&");
    sink->EndElement("r");
  }
  EXPECT_EQ(counting.bytes(), str.str().size());
}

// ---- Property sweep: parse(serialize(f)) == f for random forests. ----

Forest RandomForest(Rng* rng, int depth, int max_width) {
  Forest f;
  int width = static_cast<int>(rng->Below(static_cast<std::uint64_t>(max_width) + 1));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      std::string name(1, static_cast<char>('a' + rng->Below(6)));
      f.push_back(Tree::Element(name, RandomForest(rng, depth - 1, max_width)));
    } else {
      // Text content avoiding pure whitespace and adjacent-merge ambiguity:
      // never generate two adjacent text nodes.
      if (!f.empty() && f.back().kind == NodeKind::kText) continue;
      std::string content = "t" + std::to_string(rng->Below(100));
      f.push_back(Tree::Text(content));
    }
  }
  return f;
}

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripProperty, ParseSerializeIdentity) {
  Rng rng(GetParam());
  Forest f = RandomForest(&rng, 4, 4);
  // Wrap in a root so the XML is a single document.
  Forest doc;
  doc.push_back(Tree::Element("root", f));
  std::string xml = ForestToXml(doc);
  Forest parsed = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(parsed, doc) << "xml: " << xml;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range(0, 50));

// ---- SIMD char-class scanning parity. ----

TEST(SimdScanTest, SimdAndScalarTracesAgree) {
  // A document stressing every bulk-scan state: long text runs (longer than
  // one SIMD vector), long names, attribute values, whitespace runs, and
  // stop bytes at every offset within a vector. Parsed with the SIMD fast
  // path on and off, the event traces must be identical — including with a
  // 1-byte refill window, where every scan crosses a buffer boundary.
  std::string xml = "<root>";
  std::string longtext(100, 'x');
  for (int i = 0; i < 40; ++i) {
    std::string name = "elem" + std::string(static_cast<std::size_t>(i % 20), 'n');
    xml += "<" + name + " attr=\"" + longtext.substr(0, 3 + i) + "\">";
    xml += longtext.substr(0, 1 + 2 * i) + "&amp;tail";
    xml += std::string(1 + i % 7, ' ');
    xml += "</" + name + ">";
  }
  xml += "</root>";

  const bool was_enabled = SimdScanEnabled();
  SetSimdScanEnabled(true);
  StringSource simd_src(xml);
  auto simd_trace = Trace(&simd_src);
  ASSERT_TRUE(simd_trace.ok()) << simd_trace.status().ToString();

  SetSimdScanEnabled(false);
  StringSource scalar_src(xml);
  auto scalar_trace = Trace(&scalar_src);
  ASSERT_TRUE(scalar_trace.ok()) << scalar_trace.status().ToString();
  EXPECT_EQ(simd_trace.value(), scalar_trace.value());

  // Chunked refill with the fast path on: identical to the whole-buffer
  // scalar trace.
  SetSimdScanEnabled(true);
  ChunkedSource chunked(xml, 1);
  auto chunked_trace = Trace(&chunked);
  ASSERT_TRUE(chunked_trace.ok()) << chunked_trace.status().ToString();
  EXPECT_EQ(chunked_trace.value(), scalar_trace.value());

  SetSimdScanEnabled(was_enabled);
}

}  // namespace
}  // namespace xqmft
