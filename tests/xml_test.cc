// Tests for the XML substrate: forest model, term notation, SAX parser,
// attribute encoding, sinks, and parse/serialize round-trips (including a
// randomized property sweep).
#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

TEST(ForestTest, SizeAndDepth) {
  Forest f = std::move(ParseTerm("a(b(c) d) e").ValueOrDie());
  EXPECT_EQ(ForestSize(f), 5u);
  EXPECT_EQ(ForestDepth(f), 3u);
  EXPECT_EQ(ForestSize({}), 0u);
  EXPECT_EQ(ForestDepth({}), 0u);
}

TEST(ForestTest, TermRoundTrip) {
  const std::string term = "a(b(\"x y\") c) \"top\" d";
  Forest f = std::move(ParseTerm(term).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), term);
}

TEST(ForestTest, TermParseErrors) {
  EXPECT_FALSE(ParseTerm("a(").ok());
  EXPECT_FALSE(ParseTerm("a)").ok());
  EXPECT_FALSE(ParseTerm("\"unterminated").ok());
  EXPECT_FALSE(ParseTerm("a((b)").ok());
}

TEST(ForestTest, TermQuotedEscapes) {
  Forest f = std::move(ParseTerm(R"( "a\"b\\c" )").ValueOrDie());
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].label, "a\"b\\c");
  // Round-trips through printing.
  Forest g = std::move(ParseTerm(ForestToTerm(f)).ValueOrDie());
  EXPECT_EQ(f, g);
}

TEST(ForestTest, XmlSerialization) {
  Forest f = std::move(ParseTerm("book(isbn(\"123\") title(\"A&B\"))").ValueOrDie());
  EXPECT_EQ(ForestToXml(f),
            "<book><isbn>123</isbn><title>A&amp;B</title></book>");
}

TEST(ForestTest, EmptyElementSerializesSelfClosing) {
  Forest f = std::move(ParseTerm("a(b c(d))").ValueOrDie());
  EXPECT_EQ(ForestToXml(f), "<a><b/><c><d/></c></a>");
}

TEST(SaxTest, PaperBookExample) {
  // The Section 2 example: attributes become leading child elements with a
  // text child (Figure 1's forest).
  const char* xml =
      "<book isbn=\"123\" price=\"$99\"><author>Knuth</author>"
      "<title>Art of Programming</title></book>";
  Forest f = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f),
            "book(isbn(\"123\") price(\"$99\") author(\"Knuth\") "
            "title(\"Art of Programming\"))");
}

TEST(SaxTest, SelfClosingAndNesting) {
  Forest f = std::move(
      ParseXmlForest("<doc><a><b/><b/></a><c/></doc>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "doc(a(b b) c)");
}

TEST(SaxTest, EntityDecoding) {
  Forest f = std::move(ParseXmlForest(
      "<t>&lt;x&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</t>")
                           .ValueOrDie());
  ASSERT_EQ(f.size(), 1u);
  ASSERT_EQ(f[0].children.size(), 1u);
  EXPECT_EQ(f[0].children[0].label, "<x> & \"q\" 'a' AB");
}

TEST(SaxTest, CommentsAndPIsAndDoctypeSkipped) {
  const char* xml =
      "<?xml version=\"1.0\"?><!DOCTYPE doc [<!ELEMENT doc ANY>]>"
      "<!-- a comment --><doc><!-- inner --><a/></doc>";
  Forest f = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "doc(a)");
}

TEST(SaxTest, CdataBecomesText) {
  Forest f = std::move(
      ParseXmlForest("<t><![CDATA[a<b&c]]></t>").ValueOrDie());
  EXPECT_EQ(f[0].children[0].label, "a<b&c");
}

TEST(SaxTest, CdataMergesWithAdjacentText) {
  Forest f = std::move(
      ParseXmlForest("<t>pre<![CDATA[mid]]>post</t>").ValueOrDie());
  ASSERT_EQ(f[0].children.size(), 1u);
  EXPECT_EQ(f[0].children[0].label, "premidpost");
}

TEST(SaxTest, WhitespaceSkippingByDefault) {
  Forest f = std::move(
      ParseXmlForest("<a>\n  <b> x </b>\n</a>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(b(\" x \"))");
}

TEST(SaxTest, WhitespaceKeptWhenConfigured) {
  SaxOptions opts;
  opts.skip_whitespace_text = false;
  Forest f = std::move(ParseXmlForest("<a> <b/></a>", opts).ValueOrDie());
  ASSERT_EQ(f[0].children.size(), 2u);
  EXPECT_EQ(f[0].children[0].kind, NodeKind::kText);
}

TEST(SaxTest, AttributeExpansionCanBeDisabled) {
  SaxOptions opts;
  opts.expand_attributes = false;
  StringSource src("<a x=\"1\"><b/></a>");
  SaxParser p(&src, opts);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());
  EXPECT_EQ(ev.type, XmlEventType::kStartElement);
  ASSERT_EQ(ev.attrs.size(), 1u);
  EXPECT_EQ(ev.attrs[0].first, "x");
  EXPECT_EQ(ev.attrs[0].second, "1");
}

TEST(SaxTest, ErrorMismatchedTags) {
  EXPECT_FALSE(ParseXmlForest("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseXmlForest("<a>").ok());
  EXPECT_FALSE(ParseXmlForest("</a>").ok());
}

TEST(SaxTest, ErrorMalformedMarkup) {
  EXPECT_FALSE(ParseXmlForest("<a b></a>").ok());        // attr without value
  EXPECT_FALSE(ParseXmlForest("<a b=c></a>").ok());      // unquoted value
  EXPECT_FALSE(ParseXmlForest("<a>&unknown;</a>").ok()); // unknown entity
  EXPECT_FALSE(ParseXmlForest("<1a/>").ok());            // bad name start
}

TEST(SaxTest, ErrorsReportLineAndColumn) {
  // The mismatched end tag starts on line 3. Its "</b>" begins at column 4
  // ("  x" precedes it); the parser reports the position after reading the
  // tag, column 8 — the regression this guards is the offset being lost
  // entirely, so the assertion pins the exact line and column.
  Status st = ParseXmlForest("<a>\n<c></c>\n  x</b>\n</a>").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3, column 8"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("byte 19"), std::string::npos) << st.message();

  // Errors on the first line: column counts from 1.
  Status first = ParseXmlForest("<1a/>").status();
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.message().find("line 1, column 2"), std::string::npos)
      << first.message();
}

TEST(SaxTest, ParserTracksPosition) {
  StringSource src("<a>\nhi</a>");
  SaxParser p(&src);
  EXPECT_EQ(p.line(), 1u);
  EXPECT_EQ(p.column(), 1u);
  XmlEvent ev;
  ASSERT_TRUE(p.Next(&ev).ok());  // <a>
  EXPECT_EQ(p.line(), 1u);
  EXPECT_EQ(p.column(), 4u);
  ASSERT_TRUE(p.Next(&ev).ok());  // text "hi" (reads up to '<')
  EXPECT_EQ(p.line(), 2u);
  EXPECT_EQ(p.column(), 3u);
}

TEST(SaxTest, MultipleTopLevelTreesFormAForest) {
  Forest f = std::move(ParseXmlForest("<a/><b/><c>t</c>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a b c(\"t\")");
}

TEST(SaxTest, SingleQuotedAttributes) {
  Forest f = std::move(ParseXmlForest("<a x='v'/>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(x(\"v\"))");
}

TEST(SaxTest, EmptyAttributeValueYieldsEmptyElement) {
  Forest f = std::move(ParseXmlForest("<a x=\"\"/>").ValueOrDie());
  EXPECT_EQ(ForestToTerm(f), "a(x)");
}

TEST(SinkTest, StringSinkSerializes) {
  StringSink sink;
  sink.StartElement("a");
  sink.Text("x<y");
  sink.StartElement("b");
  sink.EndElement("b");
  sink.EndElement("a");
  EXPECT_EQ(sink.str(), "<a>x&lt;y<b></b></a>");
}

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink;
  sink.StartElement("a");
  sink.Text("hello");
  sink.EndElement("a");
  EXPECT_EQ(sink.elements(), 1u);
  EXPECT_EQ(sink.texts(), 1u);
  EXPECT_GT(sink.bytes(), 5u);
}

// ---- Property sweep: parse(serialize(f)) == f for random forests. ----

Forest RandomForest(Rng* rng, int depth, int max_width) {
  Forest f;
  int width = static_cast<int>(rng->Below(static_cast<std::uint64_t>(max_width) + 1));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      std::string name(1, static_cast<char>('a' + rng->Below(6)));
      f.push_back(Tree::Element(name, RandomForest(rng, depth - 1, max_width)));
    } else {
      // Text content avoiding pure whitespace and adjacent-merge ambiguity:
      // never generate two adjacent text nodes.
      if (!f.empty() && f.back().kind == NodeKind::kText) continue;
      std::string content = "t" + std::to_string(rng->Below(100));
      f.push_back(Tree::Text(content));
    }
  }
  return f;
}

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripProperty, ParseSerializeIdentity) {
  Rng rng(GetParam());
  Forest f = RandomForest(&rng, 4, 4);
  // Wrap in a root so the XML is a single document.
  Forest doc;
  doc.push_back(Tree::Element("root", f));
  std::string xml = ForestToXml(doc);
  Forest parsed = std::move(ParseXmlForest(xml).ValueOrDie());
  EXPECT_EQ(parsed, doc) << "xml: " << xml;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace xqmft
