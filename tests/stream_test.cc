// Tests for the streaming MFT engine: cell lifecycle, output equivalence
// with the reference interpreter over the whole query corpus, bounded-memory
// behaviour for optimized transducers (vs. the input-retaining unoptimized
// ones), and incremental emission.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_common/queries.h"
#include "mft/interp.h"
#include "mft/mft.h"
#include "mft/optimize.h"
#include "stream/cells.h"
#include "stream/engine.h"
#include "translate/translate.h"
#include "util/rng.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"

namespace xqmft {
namespace {

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) ADD_FAILURE() << "ParseMft: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

std::string StreamToMarkup(const Mft& mft, const std::string& xml,
                           StreamStats* stats = nullptr) {
  StringSink sink;
  Status st = StreamTransformString(mft, xml, &sink, {}, stats);
  if (!st.ok()) {
    ADD_FAILURE() << "StreamTransform: " << st.ToString();
    return "";
  }
  return sink.str();
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

TEST(CellTest, BuilderRevealsForestIncrementally) {
  MemoryTracker tracker;
  CellArena arena(&tracker);
  SymbolTable symbols;
  CellBuilder builder(&arena, &symbols);
  IntrusivePtr<Cell> root = builder.TakeRoot();
  EXPECT_EQ(root->state(), CellState::kPending);

  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";  // no interned id: the builder interns via its table
  ASSERT_TRUE(builder.Feed(ev).ok());
  EXPECT_EQ(root->state(), CellState::kNode);
  EXPECT_EQ(symbols.name(root->symbol()), "a");
  EXPECT_EQ(symbols.kind(root->symbol()), NodeKind::kElement);
  EXPECT_EQ(root->child()->state(), CellState::kPending);
  EXPECT_EQ(root->sibling()->state(), CellState::kPending);

  ev.type = XmlEventType::kText;
  ev.text = "hi";
  ASSERT_TRUE(builder.Feed(ev).ok());
  EXPECT_EQ(root->child()->state(), CellState::kNode);
  EXPECT_EQ(root->child()->kind(), NodeKind::kText);
  EXPECT_EQ(root->child()->text(), "hi");
  EXPECT_EQ(root->child()->symbol(), kInvalidSymbol);
  EXPECT_EQ(root->child()->child()->state(), CellState::kEps);

  ev.type = XmlEventType::kEndElement;
  ev.name = "a";
  ASSERT_TRUE(builder.Feed(ev).ok());
  EXPECT_EQ(root->child()->sibling()->state(), CellState::kEps);

  ev.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(builder.Feed(ev).ok());
  EXPECT_EQ(root->sibling()->state(), CellState::kEps);
  EXPECT_TRUE(builder.done());
  EXPECT_EQ(builder.cells_created(), 5u);
}

TEST(CellTest, RefcountsFreeDroppedPrefix) {
  MemoryTracker tracker;
  CellArena arena(&tracker);
  SymbolTable symbols;
  auto builder = std::make_unique<CellBuilder>(&arena, &symbols);
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";
  ASSERT_TRUE(builder->Feed(ev).ok());
  ev.type = XmlEventType::kEndElement;
  ASSERT_TRUE(builder->Feed(ev).ok());
  ev.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(builder->Feed(ev).ok());
  std::size_t with_cells = tracker.current_bytes();
  EXPECT_GT(with_cells, 0u);
  builder.reset();  // releases the root reference
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

TEST(CellTest, TrackerAccountingIsSymmetricUnderChurn) {
  // Regression: cell destruction used to release std::string SSO capacity
  // that was never charged, so node churn drained the tracker while data
  // stayed retained — churn-heavy runs reported peaks orders of magnitude
  // below the truly live bytes (the pre-PR3 Figure 4 memory numbers).
  MemoryTracker tracker;
  CellArena arena(&tracker);
  SymbolTable symbols;
  CellBuilder builder(&arena, &symbols);
  IntrusivePtr<Cell> root = builder.TakeRoot();
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "r";
  ASSERT_TRUE(builder.Feed(ev).ok());
  ev.type = XmlEventType::kText;
  ev.text = "retained content";
  ASSERT_TRUE(builder.Feed(ev).ok());
  const std::size_t base = tracker.current_bytes();
  ASSERT_GT(base, 0u);
  // Nodes created and destroyed while the base stays retained must leave
  // the tracked total exactly where it was — element, text, and eps alike.
  for (int i = 0; i < 1000; ++i) {
    IntrusivePtr<Cell> churn_element(arena.slab.New(&arena));
    churn_element->FillElement(root->symbol(), {}, {});
    IntrusivePtr<Cell> churn_text(arena.slab.New(&arena));
    churn_text->FillText(RefString::Copy("spinning", &tracker), {}, {});
    IntrusivePtr<Cell> churn_eps(arena.slab.New(&arena));
    churn_eps->FillEps();
  }
  EXPECT_EQ(tracker.current_bytes(), base);
}

TEST(CellTest, UnbalancedEventsRejected) {
  MemoryTracker tracker;
  CellArena arena(&tracker);
  SymbolTable symbols;
  CellBuilder builder(&arena, &symbols);
  XmlEvent ev;
  ev.type = XmlEventType::kEndElement;
  EXPECT_FALSE(builder.Feed(ev).ok());
}

// ---------------------------------------------------------------------------
// Engine basics
// ---------------------------------------------------------------------------

TEST(StreamEngineTest, CopyTransducerRoundTrips) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  const char* xml = "<a><b x=\"1\">t</b><c/>tail</a>";
  // Streaming the copy transducer reproduces the (attribute-encoded) input.
  EXPECT_EQ(StreamToMarkup(m, xml),
            "<a><b><x>1</x>t</b><c></c>tail</a>");
}

TEST(StreamEngineTest, MatchesInterpreterOnMperson) {
  Mft m = MustParseMft(R"(
q0(%) -> out(q1(x0))
q1(person(x1)x2) -> q2(x1, q4(x1)) q1(x2)
q1(%t(x1)x2) -> q1(x1) q1(x2)
q1(eps) -> eps
q2(p_id(x1)x2, y1) -> q3(x1, y1, q2(x2, y1))
q2(%t(x1)x2, y1) -> q2(x2, y1)
q2(eps, y1) -> eps
q3("person0"(x1)x2, y1, y2) -> y1
q3(%t(x1)x2, y1, y2) -> q3(x2, y1, y2)
q3(eps, y1, y2) -> y2
q4(name(x1)x2) -> q5(x1) q4(x2)
q4(%t(x1)x2) -> q4(x2)
q4(eps) -> eps
q5(%ttext(x1)x2) -> %t(eps) q5(x2)
q5(%t(x1)x2) -> q5(x2)
q5(eps) -> eps
)");
  const char* xml =
      "<person><p_id><a/>person0</p_id><name>Jim</name><c/>"
      "<name>Li</name></person>";
  EXPECT_EQ(StreamToMarkup(m, xml), "<out>JimLi</out>");
}

TEST(StreamEngineTest, StepBudgetCatchesDivergence) {
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> q(x0)\n");
  StreamOptions opts;
  opts.max_steps = 10'000;
  StringSink sink;
  Status st = StreamTransformString(m, "<a/>", &sink, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(StreamEngineTest, MalformedInputSurfacesParserError) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  StringSink sink;
  Status st = StreamTransformString(m, "<a><b></a>", &sink);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StreamEngineTest, SharedParameterEvaluatedOnce) {
  // y1 is used twice; with call-by-need the scan behind it runs once.
  Mft m = MustParseMft(
      "q0(%) -> q(x0, count(x0))\n"
      "q(%, y1) -> w(y1) w(y1)\n"
      "count(%t(x1)x2) -> n count(x2)\n"
      "count(eps) -> eps\n");
  StreamStats stats;
  EXPECT_EQ(StreamToMarkup(m, "<a/><a/>", &stats),
            "<w><n></n><n></n></w><w><n></n><n></n></w>");
  // 1 (q0) + 1 (q) + 3 (count on two nodes + eps) — not 6 counts.
  EXPECT_LE(stats.rule_applications, 6u);
}

// ---------------------------------------------------------------------------
// Equivalence with the reference interpreter over the query corpus
// ---------------------------------------------------------------------------

Forest RandomForest(Rng* rng, int depth) {
  Forest f;
  int width = static_cast<int>(rng->Below(4));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(4))),
          RandomForest(rng, depth - 1)));
    } else if (f.empty() || f.back().kind != NodeKind::kText) {
      f.push_back(Tree::Text("t" + std::to_string(rng->Below(5))));
    }
  }
  return f;
}

class StreamEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StreamEquivalence, StreamingMatchesInterpreter) {
  const auto& [id, seed] = GetParam();
  const BenchQuery& bq = QueryById(id);
  auto query = std::move(ParseQuery(bq.text).ValueOrDie());
  Mft raw = std::move(TranslateQuery(*query).ValueOrDie());
  Mft opt = OptimizeMft(raw);

  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  Forest doc;
  doc.push_back(Tree::Element("site", RandomForest(&rng, 4)));
  std::string xml = ForestToXml(doc);

  Forest expected = std::move(RunMft(raw, doc)).ValueOrDie();
  StringSink expected_sink;
  EmitForest(expected, &expected_sink);
  EXPECT_EQ(StreamToMarkup(raw, xml), expected_sink.str()) << bq.id;
  EXPECT_EQ(StreamToMarkup(opt, xml), expected_sink.str())
      << bq.id << " (optimized)";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, StreamEquivalence,
    ::testing::Combine(::testing::Values("q01", "q02", "q04", "q13", "q16",
                                         "q17", "double", "fourstar",
                                         "deepdup"),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<StreamEquivalence::ParamType>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Memory behaviour (the heart of Figure 4)
// ---------------------------------------------------------------------------

// A flat forest of n <person> records; every 7th (i % 7 == 3) matches the
// Pperson filter. Persons are top-level so that $input/person selects them.
std::string PersonDoc(int n) {
  std::string xml;
  for (int i = 0; i < n; ++i) {
    xml += "<person><p_id>person" + std::to_string(i % 7 == 3 ? 0 : i + 1) +
           "</p_id><name>n" + std::to_string(i) + "</name></person>";
  }
  return xml;
}

TEST(StreamMemoryTest, OptimizedSelectionRunsInBoundedMemory) {
  auto query = std::move(ParseQuery(kPersonQuery).ValueOrDie());
  Mft raw = std::move(TranslateQuery(*query).ValueOrDie());
  Mft opt = OptimizeMft(raw);

  StreamStats small_stats, large_stats;
  StringSink s1, s2;
  ASSERT_TRUE(
      StreamTransformString(opt, PersonDoc(50), &s1, {}, &small_stats).ok());
  ASSERT_TRUE(
      StreamTransformString(opt, PersonDoc(1600), &s2, {}, &large_stats).ok());
  // 32x more input; peak memory must stay flat (well under 3x).
  EXPECT_LT(large_stats.peak_bytes, small_stats.peak_bytes * 3)
      << "small=" << small_stats.peak_bytes
      << " large=" << large_stats.peak_bytes;
}

TEST(StreamMemoryTest, UnoptimizedTransducerBuffersTheInput) {
  // The raw translation retains qcopy($input) for the unused $input
  // parameter, so memory grows linearly — the paper's "MFT (no opt)" curves.
  auto query = std::move(ParseQuery(kPersonQuery).ValueOrDie());
  Mft raw = std::move(TranslateQuery(*query).ValueOrDie());

  StreamStats small_stats, large_stats;
  StringSink s1, s2;
  ASSERT_TRUE(
      StreamTransformString(raw, PersonDoc(50), &s1, {}, &small_stats).ok());
  ASSERT_TRUE(
      StreamTransformString(raw, PersonDoc(1600), &s2, {}, &large_stats).ok());
  // 32x more input; the unoptimized engine must show clear growth.
  EXPECT_GT(large_stats.peak_bytes, small_stats.peak_bytes * 8)
      << "small=" << small_stats.peak_bytes
      << " large=" << large_stats.peak_bytes;
}

TEST(StreamMemoryTest, DoubleQueryMustBufferByDesign) {
  // <double> copies the input twice: the second copy forces buffering, so
  // even the optimized transducer uses memory linear in the input — but it
  // must still complete (GCX reportedly fails here; Section 5).
  auto query =
      std::move(ParseQuery(QueryById("double").text).ValueOrDie());
  Mft opt = OptimizeMft(std::move(TranslateQuery(*query).ValueOrDie()));

  StreamStats small_stats, large_stats;
  StringSink s1, s2;
  ASSERT_TRUE(
      StreamTransformString(opt, PersonDoc(50), &s1, {}, &small_stats).ok());
  ASSERT_TRUE(
      StreamTransformString(opt, PersonDoc(800), &s2, {}, &large_stats).ok());
  EXPECT_GT(large_stats.peak_bytes, small_stats.peak_bytes * 4);
}

TEST(StreamMemoryTest, IncrementalEmissionStartsEarly) {
  // For a streamable query, the first output must appear long before the
  // whole input has been read.
  auto query = std::move(ParseQuery(kPersonQuery).ValueOrDie());
  Mft opt = OptimizeMft(std::move(TranslateQuery(*query).ValueOrDie()));
  std::string xml = PersonDoc(2000);
  StreamStats stats;
  StringSink sink;
  ASSERT_TRUE(StreamTransformString(opt, xml, &sink, {}, &stats).ok());
  EXPECT_GT(sink.str().size(), 0u);
  EXPECT_LT(stats.bytes_in_at_first_output, xml.size() / 10)
      << "first output after " << stats.bytes_in_at_first_output << " of "
      << xml.size() << " bytes";
}

TEST(StreamMemoryTest, VeryDeepDocumentsStreamInLinearTime) {
  // Table 1 notes depth matters; the engine must handle nesting far beyond
  // any stack budget (iterative WHNF + flattened destructor chains) and in
  // linear time (the blocked-position resume; a naive per-event re-walk of
  // the Cat spine would be quadratic in depth).
  auto query = std::move(ParseQuery("<out>{$input//a/text()}</out>").ValueOrDie());
  Mft opt = OptimizeMft(std::move(TranslateQuery(*query).ValueOrDie()));
  const int depth = 50000;
  std::string xml;
  xml.reserve(static_cast<std::size_t>(depth) * 7 + 16);
  for (int i = 0; i < depth; ++i) xml += "<a>";
  xml += "x";
  for (int i = 0; i < depth; ++i) xml += "</a>";
  StringSink sink;
  StreamStats stats;
  Status st = StreamTransformString(opt, xml, &sink, {}, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(sink.str(), "<out>x</out>");
  // Linear work: a small constant number of rule applications per level.
  EXPECT_LT(stats.rule_applications, static_cast<std::uint64_t>(depth) * 8);
}

TEST(StreamMemoryTest, StatsArePopulated) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  // The copy transducer is lowerable, so the default (auto) selection runs
  // the ops engine: its cell traffic is arena-served consumer records, and
  // the refcounted cell/expr counters stay at zero.
  StreamStats stats;
  StringSink sink;
  ASSERT_TRUE(StreamTransformString(m, "<a><b/>t</a>", &sink, {}, &stats).ok());
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_GT(stats.cells_arena, 0u);
  EXPECT_EQ(stats.cells_created, 0u);
  EXPECT_EQ(stats.exprs_created, 0u);
  EXPECT_GT(stats.rule_applications, 0u);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_EQ(stats.bytes_in, std::string("<a><b/>t</a>").size());
  EXPECT_EQ(stats.output_events, 5u);  // <a>, <b>, </b>, t, </a>

  // Pinning the table machine restores the thunk-graph accounting — and the
  // output bytes must not depend on the engine.
  StreamOptions table;
  table.engine = EngineChoice::kTable;
  StreamStats tstats;
  StringSink tsink;
  ASSERT_TRUE(
      StreamTransformString(m, "<a><b/>t</a>", &tsink, table, &tstats).ok());
  EXPECT_FALSE(tstats.used_ops_engine);
  EXPECT_EQ(tstats.cells_arena, 0u);
  EXPECT_GT(tstats.cells_created, 0u);
  EXPECT_GT(tstats.exprs_created, 0u);
  EXPECT_EQ(tsink.str(), sink.str());
}

}  // namespace
}  // namespace xqmft
