// Tests for streaming schema validation (the Section 1 "validate the input
// during transformation" feature): the hedge-grammar parser, content-model
// regexes, the event-driven validator, and the one-pass integration with
// the streaming engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mft/mft.h"
#include "schema/schema.h"
#include "stream/engine.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

std::shared_ptr<const Schema> MustParseSchema(const std::string& text,
                                              bool strict = false) {
  Result<std::shared_ptr<const Schema>> r = Schema::Parse(text, strict);
  if (!r.ok()) ADD_FAILURE() << "Schema::Parse: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

Status Validate(const std::string& schema_text, const std::string& xml,
                bool strict = false) {
  auto schema = MustParseSchema(schema_text, strict);
  Forest doc = std::move(ParseXmlForest(xml).ValueOrDie());
  return ValidateForest(*schema, doc);
}

TEST(SchemaParseTest, RejectsMalformedRules) {
  EXPECT_FALSE(Schema::Parse("person name text").ok());    // no ->
  EXPECT_FALSE(Schema::Parse("a -> (b").ok());             // missing )
  EXPECT_FALSE(Schema::Parse("a -> b**)").ok());           // trailing junk
  EXPECT_FALSE(Schema::Parse("a -> b\na -> c").ok());      // duplicate
  EXPECT_FALSE(Schema::Parse(" -> b").ok());               // no name
}

TEST(SchemaParseTest, CommentsAndBlankLines) {
  EXPECT_TRUE(Schema::Parse("# comment\n\na -> b*\n").ok());
}

TEST(SchemaValidateTest, SequenceModel) {
  const char* schema = "person -> id name email?";
  EXPECT_TRUE(Validate(schema, "<person><id/><name/><email/></person>").ok());
  EXPECT_TRUE(Validate(schema, "<person><id/><name/></person>").ok());
  EXPECT_FALSE(Validate(schema, "<person><name/><id/></person>").ok());
  EXPECT_FALSE(Validate(schema, "<person><id/></person>").ok());
  EXPECT_FALSE(
      Validate(schema, "<person><id/><name/><email/><email/></person>").ok());
}

TEST(SchemaValidateTest, StarPlusOptional) {
  const char* schema = "list -> item+\nitem -> text?";
  EXPECT_TRUE(Validate(schema, "<list><item>x</item><item/></list>").ok());
  EXPECT_FALSE(Validate(schema, "<list/>").ok());  // + requires one
  const char* star = "list -> item*";
  EXPECT_TRUE(Validate(star, "<list/>").ok());
}

TEST(SchemaValidateTest, Alternation) {
  const char* schema = "doc -> (a | b)* c";
  EXPECT_TRUE(Validate(schema, "<doc><a/><b/><a/><c/></doc>").ok());
  EXPECT_TRUE(Validate(schema, "<doc><c/></doc>").ok());
  EXPECT_FALSE(Validate(schema, "<doc><a/><c/><a/></doc>").ok());
}

TEST(SchemaValidateTest, TextAndAnyAtoms) {
  EXPECT_TRUE(Validate("name -> text", "<name>Jim</name>").ok());
  EXPECT_FALSE(Validate("name -> text", "<name><x/></name>").ok());
  EXPECT_FALSE(Validate("name -> text", "<name/>").ok());
  EXPECT_TRUE(Validate("wrap -> any*", "<wrap>x<a/><b>t</b></wrap>").ok());
}

TEST(SchemaValidateTest, UnconstrainedElementsPassByDefault) {
  EXPECT_TRUE(Validate("a -> b", "<a><b><zzz/></b></a>").ok());
}

TEST(SchemaValidateTest, StrictModeRejectsUnknownElements) {
  EXPECT_FALSE(Validate("a -> b", "<a><b><zzz/></b></a>", true).ok());
  EXPECT_TRUE(Validate("a -> b\nb -> zzz?\nzzz -> \n",
                       "<a><b><zzz/></b></a>", true)
                  .ok());
}

TEST(SchemaValidateTest, NestedModels) {
  const char* schema =
      "site -> people\n"
      "people -> person*\n"
      "person -> id name\n"
      "id -> text\n"
      "name -> text\n";
  EXPECT_TRUE(Validate(schema,
                       "<site><people>"
                       "<person><id>1</id><name>A</name></person>"
                       "<person><id>2</id><name>B</name></person>"
                       "</people></site>")
                  .ok());
  EXPECT_FALSE(Validate(schema,
                        "<site><people><person><name>A</name><id>1</id>"
                        "</person></people></site>")
                   .ok());
}

TEST(SchemaValidateTest, ValidatorReportsCompletion) {
  auto schema = MustParseSchema("a -> b*");
  SchemaValidator v(schema);
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";
  ASSERT_TRUE(v.Feed(ev).ok());
  EXPECT_FALSE(v.complete());
  ev.type = XmlEventType::kEndElement;
  ASSERT_TRUE(v.Feed(ev).ok());
  ev.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(v.Feed(ev).ok());
  EXPECT_TRUE(v.complete());
}

// One pass: transformation and validation share the same event stream.
TEST(SchemaStreamTest, ValidationDuringTransformation) {
  Mft copy = std::move(ParseMft("qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\n"
                                "qcopy(eps) -> eps\n")
                           .ValueOrDie());
  auto schema = MustParseSchema("r -> a* b");

  {
    SchemaValidator v(schema);
    StreamOptions opts;
    opts.validator = &v;
    StringSink sink;
    Status st = StreamTransformString(copy, "<r><a/><a/><b/></r>", &sink, opts);
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(sink.str(), "<r><a></a><a></a><b></b></r>");
  }
  {
    SchemaValidator v(schema);
    StreamOptions opts;
    opts.validator = &v;
    StringSink sink;
    Status st = StreamTransformString(copy, "<r><b/><a/></r>", &sink, opts);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace xqmft
