// Tests for the Section 4.2 composition theory: fcns/eval correspondences
// (Lemma 1), the stay-move TT composition and its quadratic size (Lemma 2,
// against the classical exponential construction), both MTT/TT compositions
// (Lemma 3), and the forest-level Theorems 3-5 with randomized semantic
// contracts.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "compose/btree.h"
#include "compose/compose.h"
#include "compose/convert.h"
#include "compose/mtt.h"
#include "mft/interp.h"
#include "mft/mft.h"
#include "util/rng.h"
#include "xml/forest.h"

namespace xqmft {
namespace {

Forest RandomForest(Rng* rng, int depth) {
  Forest f;
  int width = static_cast<int>(rng->Below(4));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(3))),
          RandomForest(rng, depth - 1)));
    } else {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(3)))));
    }
  }
  return f;
}

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) ADD_FAILURE() << "ParseMft: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

BTreePtr MustRunMtt(const Mtt& m, const BTreePtr& t) {
  Result<BTreePtr> r = RunMtt(m, t);
  if (!r.ok()) ADD_FAILURE() << "RunMtt: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Binary trees and fcns
// ---------------------------------------------------------------------------

TEST(BTreeTest, FcnsMatchesPaperDefinition) {
  // fcns(s(f1) f2) = s(fcns(f1), fcns(f2)).
  Forest f = std::move(ParseTerm("a(b c) d").ValueOrDie());
  BTreePtr t = Fcns(f);
  ASSERT_TRUE(t != nullptr);
  EXPECT_EQ(BTreeToString(t), "a(b(e,c(e,e)),d(e,e))");
  EXPECT_EQ(BTreeSize(t), 4u);
}

TEST(BTreeTest, UnfcnsInverts) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    Forest f = RandomForest(&rng, 4);
    EXPECT_EQ(Unfcns(Fcns(f)), f);
  }
}

TEST(BTreeTest, Equality) {
  Forest f = std::move(ParseTerm("a(b) c").ValueOrDie());
  EXPECT_TRUE(BTreeEquals(Fcns(f), Fcns(f)));
  Forest g = std::move(ParseTerm("a(b c)").ValueOrDie());
  EXPECT_FALSE(BTreeEquals(Fcns(f), Fcns(g)));
  EXPECT_TRUE(BTreeEquals(nullptr, nullptr));
}

// ---------------------------------------------------------------------------
// MTT model + interpreter
// ---------------------------------------------------------------------------

// The binary-tree identity MTT (a TT).
Mtt IdentityTt() {
  Mtt m;
  StateId q = m.AddState("id", 0);
  m.set_initial_state(q);
  m.SetDefaultRule(q, BExpr::CurrentLabel(BExpr::Call(q, InputVar::kX1),
                                          BExpr::Call(q, InputVar::kX2)));
  m.SetEpsilonRule(q, BExpr::Eps());
  return m;
}

TEST(MttTest, IdentityOnRandomTrees) {
  Mtt id = IdentityTt();
  ASSERT_TRUE(id.Validate().ok());
  EXPECT_TRUE(id.IsTopDown());
  Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    BTreePtr t = Fcns(RandomForest(&rng, 4));
    EXPECT_TRUE(BTreeEquals(MustRunMtt(id, t), t));
  }
}

TEST(MttTest, StayLoopDetectedBeforeStackOverflow) {
  // A q(x0) stay loop: with the default step budget the recursion would
  // overflow the C++ stack long before the budget fires, so the stay-chain
  // detector must fail the run cleanly (mirroring the MFT interpreter).
  Mtt m;
  StateId q = m.AddState("loop", 0);
  m.set_initial_state(q);
  m.SetDefaultRule(q, BExpr::Call(q, InputVar::kX0));
  m.SetEpsilonRule(q, BExpr::Call(q, InputVar::kX0));
  Result<BTreePtr> out = RunMtt(m, nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(MttTest, ValidateCatchesArityAndParams) {
  Mtt m;
  StateId q0 = m.AddState("q0", 0);
  StateId q1 = m.AddState("q1", 1);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, BExpr::Call(q1, InputVar::kX1, {}));  // missing arg
  m.SetEpsilonRule(q0, BExpr::Eps());
  m.SetDefaultRule(q1, BExpr::Param(1));
  m.SetEpsilonRule(q1, BExpr::Param(1));
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MttTest, ParametersAccumulate) {
  // Reverse the spine of a right chain using one parameter.
  Mtt m;
  StateId q0 = m.AddState("q0", 0);
  StateId q = m.AddState("q", 1);
  m.set_initial_state(q0);
  m.SetDefaultRule(q0, BExpr::Call(q, InputVar::kX0, {BExpr::Eps()}));
  m.SetEpsilonRule(q0, BExpr::Call(q, InputVar::kX0, {BExpr::Eps()}));
  // q(s(x1,x2), y1) -> q(x2, s(e, y1))
  m.SetDefaultRule(
      q, BExpr::Call(q, InputVar::kX2,
                     {BExpr::CurrentLabel(BExpr::Eps(), BExpr::Param(1))}));
  m.SetEpsilonRule(q, BExpr::Param(1));
  ASSERT_TRUE(m.Validate().ok());
  BTreePtr t = Fcns(std::move(ParseTerm("a b c").ValueOrDie()));
  BTreePtr out = MustRunMtt(m, t);
  EXPECT_EQ(ForestToTerm(Unfcns(out)), "c b a");
}

// ---------------------------------------------------------------------------
// Lemma 1: conversions
// ---------------------------------------------------------------------------

TEST(ConvertTest, EvalInterpretsAtAndLabels) {
  // @(q.., @(y.., b(e,e))) style: eval(b(e,e)) = b; eval(@(l,r)) = l r.
  BTreePtr b = MakeBNode(Symbol::Element("b"), nullptr, nullptr);
  BTreePtr a = MakeBNode(Symbol::Element("a"), b, nullptr);
  BTreePtr at = MakeBNode(AtSymbol(), a, MakeBNode(Symbol::Element("c"),
                                                   nullptr, nullptr));
  EXPECT_EQ(ForestToTerm(EvalBTree(at)), "a(b) c");
}

// The Lemma 1(1) contract: eval([[MftToMtt(M)]](fcns f)) = [[M]](f).
void ExpectLemma11(const Mft& mft, const Forest& f) {
  Mtt mtt = MftToMtt(mft);
  ASSERT_TRUE(mtt.Validate().ok());
  Forest expected = std::move(RunMft(mft, f)).ValueOrDie();
  BTreePtr t = MustRunMtt(mtt, Fcns(f));
  EXPECT_EQ(ForestToTerm(EvalBTree(t)), ForestToTerm(expected));
  // Converse: reinterpreting @ restores the MFT.
  Mft back = MttEvalToMft(mtt);
  ASSERT_TRUE(back.Validate().ok());
  Forest again = std::move(RunMft(back, f)).ValueOrDie();
  EXPECT_EQ(ForestToTerm(again), ForestToTerm(expected));
}

TEST(ConvertTest, Lemma11OnCopyTransducer) {
  Mft copy = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    ExpectLemma11(copy, RandomForest(&rng, 4));
  }
}

TEST(ConvertTest, Lemma11OnParameterizedMft) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, mark)\n"
      "q(a(x1)x2, y1) -> y1 q(x1, wrap(y1)) q(x2, y1)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    ExpectLemma11(m, RandomForest(&rng, 4));
  }
}

TEST(ConvertTest, EvalMttComputesFcnsOfEval) {
  // Lemma 1(3): [[EvalMtt]](t) = Fcns(EvalBTree(t)) on random @-trees.
  Mtt ev = MakeEvalMtt();
  ASSERT_TRUE(ev.Validate().ok());
  Rng rng(23);
  std::function<BTreePtr(int)> gen = [&](int depth) -> BTreePtr {
    if (depth == 0 || rng.Chance(1, 4)) return nullptr;
    Symbol sym = rng.Chance(1, 3)
                     ? AtSymbol()
                     : Symbol::Element(std::string(
                           1, static_cast<char>('a' + rng.Below(3))));
    return MakeBNode(sym, gen(depth - 1), gen(depth - 1));
  };
  for (int i = 0; i < 40; ++i) {
    BTreePtr t = gen(5);
    BTreePtr got = MustRunMtt(ev, t);
    EXPECT_TRUE(BTreeEquals(got, Fcns(EvalBTree(t))))
        << BTreeToString(t);
  }
}

// ---------------------------------------------------------------------------
// Lemma 2: TT . TT with stay moves, vs the classical construction
// ---------------------------------------------------------------------------

// The paper's example: M1 rewrites every a into 4 b's (on a chain); M2
// doubles every b into c(.,.).
Mtt FourBs() {
  Mtt m;
  StateId q = m.AddState("q0", 0);
  m.set_initial_state(q);
  BExpr chain = BExpr::Call(q, InputVar::kX1);
  for (int i = 0; i < 4; ++i) {
    chain = BExpr::Label(Symbol::Element("b"), std::move(chain), BExpr::Eps());
  }
  m.SetSymbolRule(q, Symbol::Element("a"), std::move(chain));
  m.SetDefaultRule(q, BExpr::Eps());
  m.SetEpsilonRule(q, BExpr::Eps());
  return m;
}

Mtt DoubleBs() {
  Mtt m;
  StateId p = m.AddState("p0", 0);
  m.set_initial_state(p);
  m.SetSymbolRule(p, Symbol::Element("b"),
                  BExpr::Label(Symbol::Element("c"),
                               BExpr::Call(p, InputVar::kX1),
                               BExpr::Call(p, InputVar::kX1)));
  m.SetDefaultRule(p, BExpr::Eps());
  m.SetEpsilonRule(p, BExpr::Eps());
  return m;
}

BTreePtr AChain(int n) {
  BTreePtr t = nullptr;
  for (int i = 0; i < n; ++i) {
    t = MakeBNode(Symbol::Element("a"), t, nullptr);
  }
  return t;
}

TEST(Lemma2Test, PaperExampleComposesCorrectly) {
  Mtt m1 = FourBs();
  Mtt m2 = DoubleBs();
  Result<Mtt> composed = ComposeTtTt(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  EXPECT_TRUE(composed.value().IsTopDown());
  for (int n = 0; n <= 3; ++n) {
    BTreePtr t = AChain(n);
    BTreePtr direct = MustRunMtt(m2, MustRunMtt(m1, t));
    BTreePtr via = MustRunMtt(composed.value(), t);
    EXPECT_TRUE(BTreeEquals(direct, via)) << "n=" << n;
  }
}

TEST(Lemma2Test, NaiveConstructionAgreesButExplodes) {
  Mtt m1 = FourBs();
  Mtt m2 = DoubleBs();
  Result<Mtt> naive = NaiveComposeTtTt(m1, m2);
  ASSERT_TRUE(naive.ok());
  Result<Mtt> stay = ComposeTtTt(m1, m2);
  ASSERT_TRUE(stay.ok());
  for (int n = 0; n <= 3; ++n) {
    BTreePtr t = AChain(n);
    EXPECT_TRUE(BTreeEquals(MustRunMtt(naive.value(), t),
                            MustRunMtt(stay.value(), t)));
  }
  // Growth: a chain emitting L b's composes naively into ~2^L rhs nodes
  // (the paper's "complete binary tree of height 5" at L=4), while the
  // stay-move construction stays linear in L. The per-state overhead of the
  // stay construction dominates at tiny L; the exponential takes over well
  // before L=12.
  auto chain_tt = [](int l) {
    Mtt m;
    StateId q = m.AddState("q0", 0);
    m.set_initial_state(q);
    BExpr chain = BExpr::Call(q, InputVar::kX1);
    for (int i = 0; i < l; ++i) {
      chain =
          BExpr::Label(Symbol::Element("b"), std::move(chain), BExpr::Eps());
    }
    m.SetSymbolRule(q, Symbol::Element("a"), std::move(chain));
    m.SetDefaultRule(q, BExpr::Eps());
    m.SetEpsilonRule(q, BExpr::Eps());
    return m;
  };
  std::size_t naive12 = NaiveComposeTtTt(chain_tt(12), m2).ValueOrDie().Size();
  std::size_t naive8 = NaiveComposeTtTt(chain_tt(8), m2).ValueOrDie().Size();
  std::size_t naive4 = NaiveComposeTtTt(chain_tt(4), m2).ValueOrDie().Size();
  std::size_t stay12 = ComposeTtTt(chain_tt(12), m2).ValueOrDie().Size();
  std::size_t stay8 = ComposeTtTt(chain_tt(8), m2).ValueOrDie().Size();
  std::size_t stay4 = ComposeTtTt(chain_tt(4), m2).ValueOrDie().Size();
  EXPECT_GT(naive8, naive4 * 8);              // exponential growth
  EXPECT_GT(naive12, naive8 * 8);
  EXPECT_LT(stay8, stay4 * 3);                // roughly linear growth
  EXPECT_LT(stay12, stay8 * 2);
  EXPECT_LT(stay12 * 8, naive12);             // stay moves win outright
}

TEST(Lemma2Test, NaiveFuelGuard) {
  Mtt m2 = DoubleBs();
  Mtt big;  // 24 b's per a: 2^24 rhs nodes, must hit the fuel guard
  {
    StateId q = big.AddState("q0", 0);
    big.set_initial_state(q);
    BExpr chain = BExpr::Call(q, InputVar::kX1);
    for (int i = 0; i < 24; ++i) {
      chain =
          BExpr::Label(Symbol::Element("b"), std::move(chain), BExpr::Eps());
    }
    big.SetSymbolRule(q, Symbol::Element("a"), std::move(chain));
    big.SetDefaultRule(q, BExpr::Eps());
    big.SetEpsilonRule(q, BExpr::Eps());
  }
  Result<Mtt> r = NaiveComposeTtTt(big, m2, /*fuel=*/100'000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // The stay-move construction handles the same pair instantly.
  EXPECT_TRUE(ComposeTtTt(big, m2).ok());
}

// Random terminating TTs: calls use x1/x2 only (strictly consuming).
Mtt RandomTt(Rng* rng, int states) {
  Mtt m;
  for (int i = 0; i < states; ++i) {
    m.AddState("t" + std::to_string(i), 0);
  }
  m.set_initial_state(0);
  std::function<BExpr(int)> gen = [&](int depth) -> BExpr {
    switch (rng->Below(depth > 0 ? 3 : 2)) {
      case 0:
        return BExpr::Eps();
      case 1: {
        StateId q = static_cast<StateId>(rng->Below(
            static_cast<std::uint64_t>(states)));
        InputVar x = rng->Chance(1, 2) ? InputVar::kX1 : InputVar::kX2;
        return BExpr::Call(q, x);
      }
      default:
        return BExpr::Label(
            Symbol::Element(std::string(1, static_cast<char>('a' + rng->Below(3)))),
            gen(depth - 1), gen(depth - 1));
    }
  };
  for (int i = 0; i < states; ++i) {
    if (rng->Chance(2, 3)) {
      m.SetSymbolRule(i, Symbol::Element("a"), gen(3));
    }
    if (rng->Chance(1, 3)) {
      m.SetSymbolRule(i, Symbol::Element("b"), gen(3));
    }
    m.SetDefaultRule(i, gen(3));
    m.SetEpsilonRule(i, BExpr::Eps());
  }
  return m;
}

class Lemma2Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2Property, ComposedTtAgreesWithSequential) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  Mtt m1 = RandomTt(&rng, 2 + static_cast<int>(rng.Below(2)));
  Mtt m2 = RandomTt(&rng, 2 + static_cast<int>(rng.Below(2)));
  ASSERT_TRUE(m1.Validate().ok());
  ASSERT_TRUE(m2.Validate().ok());
  Result<Mtt> composed = ComposeTtTt(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  // Size bound: O(|Sigma||M1||M2|) with a small constant.
  std::set<Symbol> sigma = m1.CollectAlphabet();
  for (const Symbol& s : m2.CollectAlphabet()) sigma.insert(s);
  EXPECT_LE(composed.value().Size(),
            8 * (sigma.size() + 2) * m1.Size() * m2.Size());
  for (int i = 0; i < 6; ++i) {
    BTreePtr t = Fcns(RandomForest(&rng, 3));
    BTreePtr direct = MustRunMtt(m2, MustRunMtt(m1, t));
    BTreePtr via = MustRunMtt(composed.value(), t);
    EXPECT_TRUE(BTreeEquals(direct, via))
        << "input " << BTreeToString(t) << "\ndirect "
        << BTreeToString(direct) << "\nvia " << BTreeToString(via);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Property, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Lemma 3: MTT . TT and TT . MTT
// ---------------------------------------------------------------------------

// Random terminating MTT: one state with a parameter plus helpers.
Mtt RandomMtt(Rng* rng) {
  Mtt m;
  StateId q0 = m.AddState("m0", 0);
  StateId q1 = m.AddState("m1", 1);
  m.set_initial_state(q0);
  std::function<BExpr(int, int)> gen = [&](int depth, int params) -> BExpr {
    switch (rng->Below(depth > 0 ? 4 : 2)) {
      case 0:
        return BExpr::Eps();
      case 1:
        if (params > 0) return BExpr::Param(1);
        return BExpr::Eps();
      case 2: {
        InputVar x = rng->Chance(1, 2) ? InputVar::kX1 : InputVar::kX2;
        if (rng->Chance(1, 2)) {
          return BExpr::Call(q1, x, {gen(depth - 1, params)});
        }
        return BExpr::Call(q0, x);
      }
      default:
        return BExpr::Label(
            Symbol::Element(std::string(1, static_cast<char>('a' + rng->Below(3)))),
            gen(depth - 1, params), gen(depth - 1, params));
    }
  };
  m.SetSymbolRule(q0, Symbol::Element("a"), gen(3, 0));
  m.SetDefaultRule(q0, gen(3, 0));
  m.SetEpsilonRule(q0, BExpr::Eps());
  m.SetSymbolRule(q1, Symbol::Element("a"), gen(3, 1));
  m.SetDefaultRule(q1, gen(3, 1));
  m.SetEpsilonRule(q1, BExpr::Param(1));
  return m;
}

class Lemma3Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma3Property, MttThenTtAgreesWithSequential) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 11);
  Mtt m1 = RandomMtt(&rng);
  Mtt m2 = RandomTt(&rng, 2);
  ASSERT_TRUE(m1.Validate().ok());
  Result<Mtt> composed = ComposeMttThenTt(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  for (int i = 0; i < 6; ++i) {
    BTreePtr t = Fcns(RandomForest(&rng, 3));
    BTreePtr direct = MustRunMtt(m2, MustRunMtt(m1, t));
    BTreePtr via = MustRunMtt(composed.value(), t);
    EXPECT_TRUE(BTreeEquals(direct, via)) << BTreeToString(t);
  }
}

TEST_P(Lemma3Property, TtThenMttAgreesWithSequential) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 69061 + 3);
  Mtt m1 = RandomTt(&rng, 2);
  Mtt m2 = RandomMtt(&rng);
  Result<Mtt> composed = ComposeTtThenMtt(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  for (int i = 0; i < 6; ++i) {
    BTreePtr t = Fcns(RandomForest(&rng, 3));
    BTreePtr direct = MustRunMtt(m2, MustRunMtt(m1, t));
    BTreePtr via = MustRunMtt(composed.value(), t);
    EXPECT_TRUE(BTreeEquals(direct, via)) << BTreeToString(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma3Property, ::testing::Range(0, 25));

TEST(Lemma3Test, RejectsWrongClasses) {
  Rng rng(1);
  Mtt mtt = RandomMtt(&rng);
  ASSERT_FALSE(mtt.IsTopDown());
  EXPECT_FALSE(ComposeTtTt(mtt, IdentityTt()).ok());
  EXPECT_FALSE(ComposeMttThenTt(IdentityTt(), mtt).ok());
  EXPECT_FALSE(ComposeTtThenMtt(mtt, mtt).ok());
}

// ---------------------------------------------------------------------------
// Theorems 3-5: forest-level compositions
// ---------------------------------------------------------------------------

// Forest FTs for the contracts.
Mft RelabelFt() {
  // a -> z, everything else copied.
  return MustParseMft(
      "q0(a(x1)x2) -> z(q0(x1)) q0(x2)\n"
      "q0(%t(x1)x2) -> %t(q0(x1)) q0(x2)\n"
      "q0(eps) -> eps\n");
}

Mft DropBsFt() {
  // erase b-subtrees.
  return MustParseMft(
      "q0(b(x1)x2) -> q0(x2)\n"
      "q0(%t(x1)x2) -> %t(q0(x1)) q0(x2)\n"
      "q0(eps) -> eps\n");
}

Mft DoubleTopFt() {
  // duplicate every node's subtree at top level: exponential growth class.
  return MustParseMft(
      "q0(%t(x1)x2) -> %t(q0(x1)) %t(q0(x1)) q0(x2)\n"
      "q0(eps) -> eps\n");
}

class TheoremsProperty : public ::testing::TestWithParam<int> {};

TEST_P(TheoremsProperty, ComposeForestFtsRealizesSequentialApplication) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 5);
  const Mft m1s[] = {RelabelFt(), DropBsFt(), DoubleTopFt()};
  const Mft m2s[] = {RelabelFt(), DropBsFt()};
  const Mft& m1 = m1s[rng.Below(3)];
  const Mft& m2 = m2s[rng.Below(2)];
  Result<Mft> composed = ComposeForestFts(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  for (int i = 0; i < 5; ++i) {
    Forest f = RandomForest(&rng, 3);
    Forest direct = std::move(
        RunMft(m2, std::move(RunMft(m1, f)).ValueOrDie())).ValueOrDie();
    Forest via = std::move(RunMft(composed.value(), f)).ValueOrDie();
    EXPECT_EQ(ForestToTerm(via), ForestToTerm(direct))
        << "input: " << ForestToTerm(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremsProperty, ::testing::Range(0, 20));

TEST(TheoremsTest, Theorem4ProducesAnFt) {
  // TT then forest FT stays rank-1.
  Mtt m1 = MftToMtt(RelabelFt());
  ASSERT_TRUE(m1.IsTopDown());
  Result<Mft> composed = ComposeTtThenForestFt(m1, DropBsFt());
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  EXPECT_TRUE(composed.value().IsForestTransducer());
}

TEST(TheoremsTest, Theorem5ContractHolds) {
  // FT then TT: [[M]](Fcns f) = [[M2]](Fcns([[M1]](f))).
  Mft m1 = DoubleTopFt();
  Mtt m2 = DoubleBs();
  Result<Mtt> composed = ComposeForestFtThenTt(m1, m2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    Forest f = RandomForest(&rng, 3);
    Forest mid = std::move(RunMft(m1, f)).ValueOrDie();
    BTreePtr direct = MustRunMtt(m2, Fcns(mid));
    BTreePtr via = MustRunMtt(composed.value(), Fcns(f));
    EXPECT_TRUE(BTreeEquals(direct, via)) << ForestToTerm(f);
  }
}

TEST(TheoremsTest, FtCompositionCanHaveDoubleExponentialGrowth) {
  // Section 4.2's motivation: composing the doubling FT with itself has
  // double-exponential height increase — yet one MFT realizes it.
  Mft dbl = DoubleTopFt();
  Result<Mft> composed = ComposeForestFts(dbl, dbl);
  ASSERT_TRUE(composed.ok());
  // The construction routes through the one-parameter eval MTT, so the
  // resulting MFT genuinely uses accumulating parameters (FTs are not
  // closed under composition).
  EXPECT_FALSE(composed.value().IsForestTransducer());
  Forest f = std::move(ParseTerm("a(a)").ValueOrDie());
  Forest direct = std::move(
      RunMft(dbl, std::move(RunMft(dbl, f)).ValueOrDie())).ValueOrDie();
  Forest via = std::move(RunMft(composed.value(), f)).ValueOrDie();
  EXPECT_EQ(ForestToTerm(via), ForestToTerm(direct));
  EXPECT_EQ(direct.size(), 4u);        // 4 top-level trees
  EXPECT_EQ(ForestSize(direct), 20u);  // of 5 nodes each
}

TEST(TheoremsTest, RejectNonFtInputs) {
  Mft mft_with_params = MustParseMft(
      "q0(%) -> q(x0, eps)\n"
      "q(%t(x1)x2, y1) -> y1 q(x2, y1)\n"
      "q(eps, y1) -> y1\n");
  Mft ft = RelabelFt();
  EXPECT_FALSE(ComposeForestFts(mft_with_params, ft).ok());
  EXPECT_FALSE(ComposeForestFts(ft, mft_with_params).ok());
}

}  // namespace
}  // namespace xqmft
