// Unit tests for src/util: Status/Result, IntrusivePtr, Arena, Rng, strings,
// MemoryTracker.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/intrusive_ptr.h"
#include "util/memory_tracker.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace xqmft {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad query");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

Result<int> Doubled(int x) {
  XQMFT_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(std::move(Doubled(21)).ValueOrDie(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

struct Tracked : RefCounted {
  explicit Tracked(int* counter) : counter_(counter) { ++*counter_; }
  ~Tracked() override { --*counter_; }
  int* counter_;
};

TEST(IntrusivePtrTest, LifecycleThroughCopiesAndMoves) {
  int live = 0;
  {
    IntrusivePtr<Tracked> a = MakeIntrusive<Tracked>(&live);
    EXPECT_EQ(live, 1);
    EXPECT_EQ(a->ref_count(), 1u);
    {
      IntrusivePtr<Tracked> b = a;
      EXPECT_EQ(a->ref_count(), 2u);
      IntrusivePtr<Tracked> c = std::move(b);
      EXPECT_EQ(a->ref_count(), 2u);
      EXPECT_FALSE(b);  // NOLINT moved-from check is the point
    }
    EXPECT_EQ(a->ref_count(), 1u);
  }
  EXPECT_EQ(live, 0);
}

TEST(IntrusivePtrTest, AssignmentReleasesOldTarget) {
  int live = 0;
  IntrusivePtr<Tracked> a = MakeIntrusive<Tracked>(&live);
  IntrusivePtr<Tracked> b = MakeIntrusive<Tracked>(&live);
  EXPECT_EQ(live, 2);
  a = b;
  EXPECT_EQ(live, 1);
  a.reset();
  EXPECT_EQ(live, 1);
  b.reset();
  EXPECT_EQ(live, 0);
}

TEST(IntrusivePtrTest, SelfAssignmentIsSafe) {
  int live = 0;
  IntrusivePtr<Tracked> a = MakeIntrusive<Tracked>(&live);
  a = *&a;
  EXPECT_EQ(live, 1);
  EXPECT_EQ(a->ref_count(), 1u);
}

TEST(ArenaTest, AllocatesAlignedAndGrows) {
  Arena arena(128);
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(48, 16);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    ptrs.push_back(p);
  }
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  EXPECT_GE(arena.bytes_used(), 100u * 48u);
}

TEST(ArenaTest, CopyStringNulTerminates) {
  Arena arena;
  const char* s = arena.CopyString("hello", 5);
  EXPECT_STREQ(s, "hello");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    auto x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(10), 10u);
    auto v = r.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(MemoryTrackerTest, TracksPeak) {
  MemoryTracker t;
  t.Charge(100);
  t.Charge(50);
  EXPECT_EQ(t.current_bytes(), 150u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30u);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.Charge(40);
  EXPECT_EQ(t.peak_bytes(), 150u);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), 70u);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto v = SplitString("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringsTest, XmlEscapedSizeMatchesXmlEscape) {
  for (const char* s : {"", "plain", "a<b&c>d", "&&&", "<<>>", "x&amp;y"}) {
    EXPECT_EQ(XmlEscapedSize(s), XmlEscape(s).size()) << s;
  }
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace xqmft
