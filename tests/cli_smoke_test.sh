#!/bin/sh
# Smoke tests for the xqmft CLI, registered under ctest (see CMakeLists.txt).
#
#   cli_smoke_test.sh <path-to-xqmft> <case>
#
# Each case drives one subcommand end to end against small inline documents
# and checks the observable output, not just the exit code.
set -u

XQMFT=$1
CASE=$2

TMPDIR_SMOKE=$(mktemp -d) || exit 1
trap 'rm -rf "$TMPDIR_SMOKE"' EXIT

QUERY='<out>{ for $x in $input/doc/item return <hit>{$x/text()}</hit> }</out>'
DOC='<doc><item>a</item><item>b</item></doc>'
WANT='<out><hit>a</hit><hit>b</hit></out>'

XML="$TMPDIR_SMOKE/doc.xml"
printf '%s' "$DOC" > "$XML"
SCHEMA="$TMPDIR_SMOKE/doc.sch"
printf 'doc -> item*\nitem -> text\n' > "$SCHEMA"

fail() {
  echo "FAIL($CASE): $1" >&2
  exit 1
}

expect_contains() {
  case "$1" in
    *"$2"*) ;;
    *) fail "expected output containing '$2', got: $1" ;;
  esac
}

case "$CASE" in
  run)
    OUT=$("$XQMFT" run "$QUERY" "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    ;;
  run_stdin)
    OUT=$("$XQMFT" run "$QUERY" < "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    ;;
  run_no_opt)
    OUT=$("$XQMFT" run --no-opt "$QUERY" "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    ;;
  run_pretok)
    CACHE="$TMPDIR_SMOKE/doc.ptk"
    OUT=$("$XQMFT" run --pretok-cache "$CACHE" "$QUERY" "$XML") \
      || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    test -s "$CACHE" || fail "pretok cache was not written"
    # Second run streams the cache (the XML is gone: only the cache serves).
    rm -f "$XML"
    OUT=$("$XQMFT" run --pretok-cache "$CACHE" "$QUERY" "$XML" 2>/dev/null) \
      || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    ;;
  run_multi)
    # Several inputs stream through parallel workers; outputs concatenate
    # in input order regardless of completion order.
    XML2="$TMPDIR_SMOKE/doc2.xml"
    printf '<doc><item>c</item></doc>' > "$XML2"
    OUT=$("$XQMFT" run --threads 2 "$QUERY" "$XML" "$XML2") || fail "exit $?"
    expect_contains "$OUT" "${WANT}<out><hit>c</hit></out>"
    # Without --threads, several inputs still run (serially).
    OUT=$("$XQMFT" run "$QUERY" "$XML" "$XML2") || fail "exit $?"
    expect_contains "$OUT" "${WANT}<out><hit>c</hit></out>"
    ;;
  run_threads_parity)
    # --threads 1 is the serial fast path: byte-identical to a plain run.
    SERIAL=$("$XQMFT" run "$QUERY" "$XML") || fail "exit $?"
    ONE=$("$XQMFT" run --threads 1 "$QUERY" "$XML" 2>/dev/null) \
      || fail "exit $?"
    test "$ONE" = "$SERIAL" || fail "--threads 1 output differs: $ONE"
    FOUR=$("$XQMFT" run --threads 4 "$QUERY" "$XML" 2>/dev/null) \
      || fail "exit $?"
    test "$FOUR" = "$SERIAL" || fail "--threads 4 output differs: $FOUR"
    ;;
  run_threads_stdin)
    # stdin cannot be sharded: a --threads run without file inputs must
    # fail loudly instead of silently reading the pipe serially.
    OUT=$("$XQMFT" run --threads 2 "$QUERY" < "$XML" 2>&1)
    test $? -eq 0 && fail "expected nonzero exit for --threads with stdin"
    expect_contains "$OUT" "stdin cannot be sharded"
    ;;
  run_threads_pretok)
    # One pretok input with --threads: single-document sharding at
    # top-level forest boundaries (single-rooted => one shard, output
    # identical to serial).
    CACHE="$TMPDIR_SMOKE/doc.ptk"
    OUT=$("$XQMFT" run --threads 2 --pretok-cache "$CACHE" "$QUERY" "$XML") \
      || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    test -s "$CACHE" || fail "pretok cache was not written"
    # The cache also serves as a positional input — sniffed by magic on the
    # parallel AND serial paths (adding/dropping --threads never changes
    # how an input is read).
    OUT=$("$XQMFT" run --threads 2 "$QUERY" "$CACHE") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    OUT=$("$XQMFT" run "$QUERY" "$CACHE") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    # Serve-cache-alone parity with the serial path: the XML gone, the
    # cache still serves under --threads.
    rm -f "$XML"
    OUT=$("$XQMFT" run --threads 2 --pretok-cache "$CACHE" "$QUERY" "$XML" \
          2>/dev/null) || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    printf '%s' "$DOC" > "$XML"
    ;;
  run_queries)
    # Multi-query run: every -q query streams over ONE input in a single
    # pass; outputs print in query order, each on its own line.
    Q2='<out>{ for $x in $input/doc/item return <up>{$x/text()}</up> }</out>'
    OUT=$("$XQMFT" run -q "$QUERY" -q "$Q2" "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    expect_contains "$OUT" "<out><up>a</up><up>b</up></out>"
    # Query order, not completion order: WANT (query 1) precedes Q2's out.
    case "$OUT" in
      *"$WANT"*"<up>a</up>"*) ;;
      *) fail "outputs not in query order: $OUT" ;;
    esac
    # stdin works as the single input; --query-file adds one query per line.
    QFILE="$TMPDIR_SMOKE/queries.txt"
    printf '%s\n\n%s\n' "$QUERY" "$Q2" > "$QFILE"
    OUT=$("$XQMFT" run --query-file "$QFILE" < "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    expect_contains "$OUT" "<out><up>a</up><up>b</up></out>"
    ;;
  run_queries_threads)
    # Multi-query execution is serial; --threads must be rejected loudly.
    OUT=$("$XQMFT" run -q "$QUERY" --threads 2 "$XML" 2>&1)
    test $? -eq 0 && fail "expected nonzero exit for -q with --threads"
    expect_contains "$OUT" "cannot combine"
    ;;
  serve_batch)
    # The "queries" batch form: one shared parse, per-query framed responses
    # echoed strictly in REQUEST order (ids 9 then 1 — descending, so any
    # completion-order or id-order reordering would flip them), duplicate
    # queries deduplicated onto one engine, then a batch summary line.
    REQ="{\"id\":\"b\",\"queries\":[{\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"id\":9},{\"query\":\"<out>{ for \$x in \$input/doc/item return <up>{\$x/text()}</up> }</out>\",\"id\":1},{\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"id\":4}],\"inputs\":[\"$XML\"]}"
    OUT=$(printf '%s\n' "$REQ" | "$XQMFT" serve) || fail "exit $?"
    expect_contains "$OUT" '"id":9,"ok":true'
    expect_contains "$OUT" '"id":1,"ok":true'
    expect_contains "$OUT" '"id":4,"ok":true'
    expect_contains "$OUT" '"deduped":true'
    expect_contains "$OUT" "$WANT"
    expect_contains "$OUT" '"batch":true'
    expect_contains "$OUT" '"documents":1'
    expect_contains "$OUT" '"unique_plans":2'
    expect_contains "$OUT" '"deduped_requests":1'
    case "$OUT" in
      *'"id":9'*'"id":1'*'"id":4'*) ;;
      *) fail "batch responses not in request order: $OUT" ;;
    esac
    # A failing query is isolated: its siblings still answer.
    REQ2="{\"queries\":[{\"query\":\"<<<\",\"id\":7},{\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"id\":8}],\"inputs\":[\"$XML\"]}"
    OUT=$(printf '%s\n' "$REQ2" | "$XQMFT" serve) || fail "exit $?"
    expect_contains "$OUT" '"id":7,"ok":false'
    expect_contains "$OUT" '"id":8,"ok":true'
    expect_contains "$OUT" "$WANT"
    ;;
  run_engine_ops)
    # Forced lowered engine: byte-identical output, and --stats reports the
    # engine that actually served plus the arena cell accounting.
    OUT=$("$XQMFT" run --engine=ops "$QUERY" "$XML") || fail "exit $?"
    expect_contains "$OUT" "$WANT"
    STATS=$("$XQMFT" run --engine ops --stats "$QUERY" "$XML" 2>&1) \
      || fail "exit $?"
    expect_contains "$STATS" "engine: ops"
    expect_contains "$STATS" "cells refcounted: 0"
    # Pinning the table engine flips the report and still matches.
    TOUT=$("$XQMFT" run --engine=table "$QUERY" "$XML") || fail "exit $?"
    test "$TOUT" = "$OUT" || fail "table output differs: $TOUT"
    TSTATS=$("$XQMFT" run --engine=table --stats "$QUERY" "$XML" 2>&1) \
      || fail "exit $?"
    expect_contains "$TSTATS" "engine: table"
    expect_contains "$TSTATS" "cells arena: 0"
    # A bogus engine name is a usage error.
    "$XQMFT" run --engine=bogus "$QUERY" "$XML" 2>/dev/null \
      && fail "expected nonzero exit for --engine=bogus"
    ;;
  run_engine_fallback)
    # --engine=ops on a plan that does not lower: every corpus query now
    # lowers (fully or hybrid), so the fallback needs a hand-written
    # transducer with a nonlinear parameter (y1 y1 is outside the rope
    # fragment). A stderr note names the reason and the run serves from the
    # table engine.
    RULES='q(a(x1)x2) -> q2(x1, m(eps)) q(x2)
q(%t(x1)x2) -> q(x2)
q(eps) -> eps
q2(a(x1)x2, y1) -> y1 y1
q2(%t(x1)x2, y1) -> y1
q2(eps, y1) -> y1'
    AXML="$TMPDIR_SMOKE/fallback.xml"
    printf '<a><a>inner</a></a>' > "$AXML"
    OUT=$("$XQMFT" mft --engine=ops "$RULES" "$AXML" 2>"$TMPDIR_SMOKE/err") \
      || fail "exit $?"
    expect_contains "$OUT" "<m></m><m></m>"
    expect_contains "$(cat "$TMPDIR_SMOKE/err")" "not lowerable"
    expect_contains "$(cat "$TMPDIR_SMOKE/err")" "falling back to table engine"
    STATS=$("$XQMFT" mft --engine=ops --stats "$RULES" "$AXML" 2>&1) \
      || fail "exit $?"
    expect_contains "$STATS" "engine: table"
    expect_contains "$STATS" "lowered: no (parameter-carrying call"
    ;;
  run_engine_hybrid)
    # A predicate query lowers hybrid: the opcode core runs the scan and the
    # selector remainder executes as table-machine bridge sub-runs. --stats
    # reports the classification and the bridge-run count.
    PQUERY='<out>{ for $x in $input/doc/item[./text()="a"] return <hit>ok</hit> }</out>'
    OUT=$("$XQMFT" run --engine=ops "$PQUERY" "$XML") || fail "exit $?"
    expect_contains "$OUT" "<out><hit>ok</hit></out>"
    TOUT=$("$XQMFT" run --engine=table "$PQUERY" "$XML") || fail "exit $?"
    test "$TOUT" = "$OUT" || fail "table output differs: $TOUT"
    STATS=$("$XQMFT" run --engine=ops --stats "$PQUERY" "$XML" 2>&1) \
      || fail "exit $?"
    expect_contains "$STATS" "engine: ops"
    expect_contains "$STATS" "lowered: yes (hybrid"
    expect_contains "$STATS" "bridge runs: 2"
    ;;
  run_dag)
    OUT=$("$XQMFT" run --dag "$QUERY" "$XML") || fail "exit $?"
    expect_contains "$OUT" "output nodes:"
    expect_contains "$OUT" "compression:"
    ;;
  serve)
    # A multi-request session: the first request compiles (cache miss), the
    # second request for the same query — different whitespace, several
    # documents, threads — hits the cached plan. Responses are framed as a
    # JSON stats header plus the serialized output.
    XML2="$TMPDIR_SMOKE/doc2.xml"
    printf '<doc><item>c</item></doc>' > "$XML2"
    OUT=$(printf '%s\n' \
      "{\"id\":1,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\"]}" \
      "{\"id\":2,\"query\":\"<out>{  for \$x in \$input/doc/item   return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\",\"$XML2\"],\"threads\":2}" \
      | "$XQMFT" serve) || fail "exit $?"
    expect_contains "$OUT" '"id":1,"ok":true'
    expect_contains "$OUT" '"cache":"miss"'
    expect_contains "$OUT" "$WANT"
    expect_contains "$OUT" '"id":2,"ok":true'
    expect_contains "$OUT" '"cache":"hit"'
    expect_contains "$OUT" '"lowered":"full"'
    expect_contains "$OUT" "${WANT}<out><hit>c</hit></out>"
    ;;
  serve_error)
    # A malformed request line and a failing request (missing file) must
    # produce error responses without killing the loop: the valid request
    # after them still serves.
    OUT=$(printf '%s\n' \
      'this is not json' \
      '{"id":5,"query":"<out>{$input/doc}</out>"}' \
      "{\"id\":6,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\"]}" \
      | "$XQMFT" serve) || fail "exit $?"
    expect_contains "$OUT" '"ok":false,"error":'
    expect_contains "$OUT" '"id":5,"ok":false'
    expect_contains "$OUT" "no documents"
    expect_contains "$OUT" '"id":6,"ok":true'
    expect_contains "$OUT" "$WANT"
    ;;
  serve_cache)
    # Cache statistics are observable in-band: per-response cumulative
    # hit/miss counters plus the stats command; --cache-capacity 1 makes
    # alternating queries thrash (evictions visible).
    Q1='{"query":"<out>{ $input/doc/item }</out>","xml":["<doc><item>a</item></doc>"]}'
    Q2='{"query":"<out>{ $input/doc }</out>","xml":["<doc><item>a</item></doc>"]}'
    OUT=$(printf '%s\n' "$Q1" "$Q2" "$Q1" '{"cmd":"stats"}' \
      | "$XQMFT" serve --cache-capacity 1) || fail "exit $?"
    expect_contains "$OUT" '"cache_entries":1'
    expect_contains "$OUT" '"compiles":3'
    expect_contains "$OUT" '"evictions":2'
    expect_contains "$OUT" '"hits":0'
    ;;
  compile)
    OUT=$("$XQMFT" compile "$QUERY" 2>"$TMPDIR_SMOKE/report") || fail "exit $?"
    expect_contains "$OUT" "q0("
    expect_contains "$(cat "$TMPDIR_SMOKE/report")" "after:"
    ;;
  compile_no_opt)
    OUT=$("$XQMFT" compile --no-opt "$QUERY" 2>/dev/null) || fail "exit $?"
    expect_contains "$OUT" "q0("
    ;;
  translate)
    OUT=$("$XQMFT" translate "$QUERY") || fail "exit $?"
    # The raw translation keeps the parameter-passing helper states that the
    # Section 4.1 passes remove.
    expect_contains "$OUT" "q0("
    expect_contains "$OUT" "y1"
    ;;
  validate)
    OUT=$("$XQMFT" validate "$SCHEMA" "$XML") || fail "exit $?"
    expect_contains "$OUT" "valid"
    ;;
  validate_invalid)
    printf '<doc><bogus/></doc>' > "$TMPDIR_SMOKE/bad.xml"
    OUT=$("$XQMFT" validate "$SCHEMA" "$TMPDIR_SMOKE/bad.xml" 2>&1)
    test $? -eq 0 && fail "expected nonzero exit for invalid document"
    expect_contains "$OUT" "schema violation"
    ;;
  serve_limits)
    # Stdin serving hardening: an overlong request line is rejected without
    # killing the session, inline documents are byte-capped, and
    # deadline_ms aborts a slow request mid-stream.
    LONG=$(head -c 400 /dev/zero | tr '\0' 'x')
    OUT=$( { printf '%s\n' "$LONG"; \
             printf '%s\n' "{\"id\":1,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\"]}"; } \
           | "$XQMFT" serve --max-line-bytes 256) || fail "exit $?"
    expect_contains "$OUT" "exceeds the 256-byte limit"
    expect_contains "$OUT" '"id":1,"ok":true'
    expect_contains "$OUT" "$WANT"
    OUT=$(printf '%s\n' '{"query":"<o/>","xml":["<doc><item>a</item></doc>"]}' \
          | "$XQMFT" serve --max-xml-bytes 8) || fail "exit $?"
    expect_contains "$OUT" '"status":"invalid_argument"'
    # A stalled source (fault injection) blows a 20ms budget; the request
    # aborts with deadline_exceeded and the loop exits cleanly on EOF.
    BIGXML="$TMPDIR_SMOKE/big.xml"
    { printf '<doc>'
      i=0
      while [ $i -lt 300 ]; do printf '<item>abc</item>'; i=$((i+1)); done
      printf '</doc>'; } > "$BIGXML"
    OUT=$(printf '%s\n' "{\"id\":2,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$BIGXML\"],\"deadline_ms\":20,\"fault\":{\"kind\":\"stall\",\"at_event\":1,\"stall_ms\":200}}" \
          | "$XQMFT" serve --enable-fault-injection) || fail "exit $?"
    expect_contains "$OUT" '"id":2,"ok":false'
    expect_contains "$OUT" '"status":"deadline_exceeded"'
    ;;
  serve_net)
    # The socket front end: serve --port 0 prints the bound ephemeral port,
    # the client subcommand round-trips a request and a server_stats
    # command, and SIGTERM drains to a clean exit 0.
    SRVOUT="$TMPDIR_SMOKE/server.out"
    "$XQMFT" serve --port 0 --workers 2 > "$SRVOUT" 2>/dev/null &
    SRV=$!
    PORT=
    i=0
    while [ $i -lt 100 ]; do
      PORT=$(sed -n 's/^listening port=//p' "$SRVOUT")
      [ -n "$PORT" ] && break
      i=$((i+1)); sleep 0.1
    done
    [ -n "$PORT" ] || { kill "$SRV" 2>/dev/null; fail "no listening port"; }
    OUT=$(printf '%s\n' \
      "{\"id\":1,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\"]}" \
      '{"cmd":"server_stats"}' \
      | "$XQMFT" client --port "$PORT") \
      || { kill "$SRV" 2>/dev/null; fail "client exit $?"; }
    expect_contains "$OUT" '"id":1,"ok":true'
    expect_contains "$OUT" "$WANT"
    expect_contains "$OUT" '"server":{"connections":1'
    kill -TERM "$SRV"
    wait "$SRV"
    RC=$?
    [ "$RC" -eq 0 ] || fail "server exit $RC after SIGTERM"
    ;;
  serve_net_sigterm)
    # Graceful drain under SIGTERM: a request mid-stall on the worker when
    # the signal lands is still computed and delivered in full before the
    # server exits 0.
    SRVOUT="$TMPDIR_SMOKE/server.out"
    "$XQMFT" serve --port 0 --workers 1 --enable-fault-injection \
      > "$SRVOUT" 2>/dev/null &
    SRV=$!
    PORT=
    i=0
    while [ $i -lt 100 ]; do
      PORT=$(sed -n 's/^listening port=//p' "$SRVOUT")
      [ -n "$PORT" ] && break
      i=$((i+1)); sleep 0.1
    done
    [ -n "$PORT" ] || { kill "$SRV" 2>/dev/null; fail "no listening port"; }
    CLOUT="$TMPDIR_SMOKE/client.out"
    printf '%s\n' "{\"id\":9,\"query\":\"<out>{ for \$x in \$input/doc/item return <hit>{\$x/text()}</hit> }</out>\",\"inputs\":[\"$XML\"],\"fault\":{\"kind\":\"stall\",\"at_event\":1,\"stall_ms\":600}}" \
      | "$XQMFT" client --port "$PORT" > "$CLOUT" &
    CL=$!
    sleep 0.3  # the request is now mid-stall on the worker
    kill -TERM "$SRV"
    wait "$SRV"
    RC=$?
    [ "$RC" -eq 0 ] || fail "server exit $RC after SIGTERM"
    wait "$CL" || fail "client failed"
    expect_contains "$(cat "$CLOUT")" '"id":9,"ok":true'
    expect_contains "$(cat "$CLOUT")" "$WANT"
    ;;
  stats)
    OUT=$("$XQMFT" stats "$XML") || fail "exit $?"
    expect_contains "$OUT" "elements: 3"
    expect_contains "$OUT" "depth: 3"
    ;;
  bad_query)
    OUT=$("$XQMFT" run '<<<' "$XML" 2>&1)
    test $? -eq 0 && fail "expected nonzero exit for a malformed query"
    expect_contains "$OUT" "MinXQuery error"
    ;;
  *)
    fail "unknown case"
    ;;
esac

exit 0
