// End-to-end tests of the public pipeline facade.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

TEST(PipelineTest, CompileStreamsAndEvaluatesConsistently) {
  auto cq = std::move(
      CompiledQuery::Compile("<out>{$input//a}</out>").ValueOrDie());
  const char* xml = "<r><a>1</a><b><a>2</a></b></r>";

  StringSink sink;
  ASSERT_TRUE(cq->StreamString(xml, &sink).ok());

  Forest doc = std::move(ParseXmlForest(xml).ValueOrDie());
  Forest expected = std::move(cq->Evaluate(doc)).ValueOrDie();
  StringSink expected_sink;
  EmitForest(expected, &expected_sink);
  EXPECT_EQ(sink.str(), expected_sink.str());
}

TEST(PipelineTest, CompileErrorsSurface) {
  EXPECT_FALSE(CompiledQuery::Compile("<out>").ok());
  EXPECT_FALSE(CompiledQuery::Compile("<out>{$nope}</out>").ok());
  // Join-like query violates the variable restriction.
  EXPECT_FALSE(CompiledQuery::Compile(
                   "for $x in $input/a return for $y in $x/b "
                   "return <r>{$x/c}</r>")
                   .ok());
}

TEST(PipelineTest, OptimizeToggle) {
  PipelineOptions no_opt;
  no_opt.optimize = false;
  auto raw = std::move(
      CompiledQuery::Compile(kPersonQuery, no_opt).ValueOrDie());
  auto opt = std::move(CompiledQuery::Compile(kPersonQuery).ValueOrDie());
  EXPECT_GT(raw->mft().TotalParams(), opt->mft().TotalParams());
  EXPECT_EQ(raw->mft().ToString(), raw->unoptimized_mft().ToString());
  EXPECT_GT(opt->optimize_report().unused_params_removed, 0);
}

TEST(PipelineTest, StreamFileWorks) {
  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, 32 * 1024, 3);
  ASSERT_TRUE(path.ok());
  auto cq = std::move(
      CompiledQuery::Compile(QueryById("q01").text).ValueOrDie());
  CountingSink sink;
  StreamStats stats;
  ASSERT_TRUE(cq->StreamFile(path.value(), &sink, &stats).ok());
  EXPECT_GT(stats.bytes_in, 30000u);
  EXPECT_GT(sink.elements(), 0u);  // at least <query01>
}

TEST(PipelineTest, MissingFileIsAnError) {
  auto cq = std::move(
      CompiledQuery::Compile("<out>{$input/a}</out>").ValueOrDie());
  StringSink sink;
  Status st = cq->StreamFile("/nonexistent/file.xml", &sink);
  EXPECT_FALSE(st.ok());
}

TEST(PipelineTest, AllBenchmarkQueriesCompile) {
  for (const BenchQuery& bq : Figure3Queries()) {
    auto cq = CompiledQuery::Compile(bq.text);
    ASSERT_TRUE(cq.ok()) << bq.id << ": " << cq.status().ToString();
    EXPECT_LE(cq.value()->mft().Size(), cq.value()->unoptimized_mft().Size())
        << bq.id;
  }
}

// Theorem 2: queries with no predicates whose output variables are used
// only in their own for scope optimize to parameterless transducers (FTs).
TEST(PipelineTest, Theorem2QualifyingQueriesBecomeFTs) {
  const char* qualifying[] = {
      // Q2: nested loops, no predicates ("the optimized MFT is in FT").
      QueryById("q02").text,
      // Q13: reconstruction ("the optimized MFT is an FT").
      QueryById("q13").text,
      "<out>{$input//a}</out>",
      "for $v in $input/r/a return <m>{$v/text()}</m>",
  };
  for (const char* text : qualifying) {
    auto cq = std::move(CompiledQuery::Compile(text).ValueOrDie());
    EXPECT_TRUE(cq->mft().IsForestTransducer())
        << text << "\n"
        << cq->mft().ToString();
  }
}

// Queries with predicates genuinely need parameters (the if-then-else
// encoding), so they must *not* collapse to FTs.
TEST(PipelineTest, PredicateQueriesKeepParameters) {
  auto cq = std::move(
      CompiledQuery::Compile(QueryById("q01").text).ValueOrDie());
  EXPECT_FALSE(cq->mft().IsForestTransducer());
}

}  // namespace
}  // namespace xqmft
