// Tests for the dense, SymbolId-indexed rule dispatch: agreement with the
// string-keyed Mft::LookupRule over the Figure 3 query corpus, the
// default/epsilon/text fallback slots, unknown-symbol behaviour, RHS label
// id resolution, and cache invalidation on rule mutation.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "bench_common/queries.h"
#include "mft/dispatch.h"
#include "mft/mft.h"
#include "mft/optimize.h"
#include "translate/translate.h"
#include "xml/symbol_table.h"
#include "xquery/ast.h"

namespace xqmft {
namespace {

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) ADD_FAILURE() << "ParseMft: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

// Checks that for every state and every probe symbol, the dense tables pick
// exactly the rule the string-keyed lookup picks.
void ExpectDispatchAgrees(const Mft& mft, const std::set<Symbol>& probes) {
  const RuleDispatch& d = mft.dispatch();
  const SymbolTable& t = mft.symbols();
  for (StateId q = 0; q < mft.num_states(); ++q) {
    for (const Symbol& s : probes) {
      const Rhs* expected = mft.LookupRule(q, s.kind, s.name);
      const Rhs* got;
      if (s.kind == NodeKind::kText) {
        got = d.ForText(q, s.name);
      } else {
        SymbolId id = t.Find(NodeKind::kElement, s.name);
        // Names outside the rule alphabet behave like a fresh runtime
        // intern: any id >= width() takes the fallback slot.
        got = d.ForElement(q, id != kInvalidSymbol ? id : d.width());
      }
      EXPECT_EQ(got, expected)
          << "state " << mft.state_name(q) << " on " << s.ToString();
    }
    EXPECT_EQ(d.Epsilon(q), mft.LookupEpsilonRule(q))
        << "epsilon of " << mft.state_name(q);
  }
}

TEST(RuleDispatchTest, AgreesWithStringLookupOnFigure3Corpus) {
  for (const BenchQuery& bq : Figure3Queries()) {
    auto query = std::move(ParseQuery(bq.text).ValueOrDie());
    Mft raw = std::move(TranslateQuery(*query).ValueOrDie());
    Mft opt = OptimizeMft(raw);
    for (const Mft* m : {&raw, &opt}) {
      std::set<Symbol> probes = m->CollectAlphabet();
      // Out-of-alphabet probes: unknown element, unknown text literal.
      probes.insert(Symbol::Element("never_in_any_rule"));
      probes.insert(Symbol::Text("never_in_any_rule"));
      probes.insert(Symbol::Text(""));
      ExpectDispatchAgrees(*m, probes);
    }
  }
}

TEST(RuleDispatchTest, DefaultEpsilonAndTextSlots) {
  Mft m = MustParseMft(R"(
q(a(x1)x2) -> A
q("lit"(x1)x2) -> L
q(%ttext(x1)x2) -> T
q(%t(x1)x2) -> D
q(eps) -> E
)");
  const RuleDispatch& d = m.dispatch();
  const SymbolTable& t = m.symbols();
  StateId q = 0;
  // Exact element symbol.
  SymbolId a = t.Find(NodeKind::kElement, "a");
  ASSERT_NE(a, kInvalidSymbol);
  EXPECT_EQ((*d.ForElement(q, a))[0].symbol.name, "A");
  // Unknown element symbol (id beyond the compiled width) -> default rule.
  EXPECT_EQ((*d.ForElement(q, d.width()))[0].symbol.name, "D");
  EXPECT_EQ((*d.ForElement(q, d.width() + 1000))[0].symbol.name, "D");
  // Text content: exact literal, then the %ttext rule.
  EXPECT_EQ((*d.ForText(q, "lit"))[0].symbol.name, "L");
  EXPECT_EQ((*d.ForText(q, "other"))[0].symbol.name, "T");
  // Epsilon slot.
  EXPECT_EQ((*d.Epsilon(q))[0].symbol.name, "E");
}

TEST(RuleDispatchTest, TextFallsBackToDefaultWithoutTextRule) {
  Mft m = MustParseMft(
      "q(a(x1)x2) -> A\n"
      "q(%t(x1)x2) -> D\n"
      "q(eps) -> E\n");
  const RuleDispatch& d = m.dispatch();
  // No %ttext rule and no text literals: every text node takes the default.
  EXPECT_EQ((*d.ForText(0, "anything"))[0].symbol.name, "D");
  EXPECT_EQ((*d.ForText(0, "a"))[0].symbol.name, "D");  // element ns only
  const SymbolTable& t = m.symbols();
  SymbolId a_el = t.Find(NodeKind::kElement, "a");
  EXPECT_EQ((*d.ForElement(0, a_el))[0].symbol.name, "A");
}

TEST(RuleDispatchTest, CapturesTextOnlyWhenARuleCanReadContent) {
  // Element-keyed rules fire on element events alone; their %t resolves from
  // the SymbolId, so a pure relabeling transducer never reads content.
  Mft relabel = MustParseMft(
      "q(a(x1)x2) -> %t(q(x1)) q(x2)\n"
      "q(%t(x1)x2) -> q(x1) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_FALSE(relabel.dispatch().captures_text());

  // A text-literal LHS matches by content.
  Mft literal = MustParseMft(
      "q(\"lit\"(x1)x2) -> L\n"
      "q(%t(x1)x2) -> q(x1) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_TRUE(literal.dispatch().captures_text());

  // %t in the text rule copies the node's content.
  Mft text_copy = MustParseMft(
      "q(%ttext(x1)x2) -> %t\n"
      "q(%t(x1)x2) -> q(x1) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_TRUE(text_copy.dispatch().captures_text());

  // A text rule that drops content never reads it.
  Mft text_drop = MustParseMft(
      "q(%ttext(x1)x2) -> t\n"
      "q(%t(x1)x2) -> q(x1) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_FALSE(text_drop.dispatch().captures_text());

  // default_rule's %t reaches text nodes only when no text rule shadows it.
  Mft default_reads = MustParseMft(
      "q(%t(x1)x2) -> %t(q(x1)) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_TRUE(default_reads.dispatch().captures_text());
  Mft default_shadowed = MustParseMft(
      "q(%ttext(x1)x2) -> t\n"
      "q(%t(x1)x2) -> %t(q(x1)) q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_FALSE(default_shadowed.dispatch().captures_text());
}

TEST(RuleDispatchTest, CompilationResolvesRhsLabelIds) {
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> out(\"txt\" q(x1))\n"
      "q(eps) -> eps\n");
  const SymbolTable& t = m.symbols();  // forces compilation
  const Rhs& rhs = *m.LookupRule(0, NodeKind::kElement, "whatever");
  ASSERT_EQ(rhs[0].kind, RhsKind::kLabel);
  EXPECT_EQ(rhs[0].symbol_id, t.Find(NodeKind::kElement, "out"));
  const Rhs& children = rhs[0].children;
  ASSERT_EQ(children[0].kind, RhsKind::kLabel);
  EXPECT_EQ(children[0].symbol_id, t.Find(NodeKind::kText, "txt"));
}

TEST(RuleDispatchTest, MutationInvalidatesAndRecompiles) {
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> D\n"
      "q(eps) -> eps\n");
  SymbolId width_before = m.dispatch().width();
  SymbolId d_before = m.symbols().Find(NodeKind::kElement, "D");
  ASSERT_NE(d_before, kInvalidSymbol);
  // Adding a rule must drop the cache; the next dispatch() sees the rule.
  m.SetSymbolRule(0, Symbol::Element("fresh"), Rhs{RhsNode::Label(
                         Symbol::Element("F"))});
  const RuleDispatch& after = m.dispatch();
  const SymbolTable& t = m.symbols();
  SymbolId fresh = t.Find(NodeKind::kElement, "fresh");
  ASSERT_NE(fresh, kInvalidSymbol);
  EXPECT_EQ((*after.ForElement(0, fresh))[0].symbol.name, "F");
  EXPECT_GT(after.width(), width_before);
  // Ids interned by the first compilation are stable across the rebuild.
  EXPECT_EQ(t.Find(NodeKind::kElement, "D"), d_before);
}

TEST(RuleDispatchTest, CopiedMftCompilesItsOwnDispatch) {
  Mft m = MustParseMft(
      "q(a(x1)x2) -> A q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n");
  const RuleDispatch& d0 = m.dispatch();
  Mft copy = m;
  const RuleDispatch& d1 = copy.dispatch();
  EXPECT_NE(&d0, &d1);  // the cache never crosses a copy
  SymbolId a = copy.symbols().Find(NodeKind::kElement, "a");
  EXPECT_EQ((*d1.ForElement(0, a))[0].symbol.name, "A");
}

}  // namespace
}  // namespace xqmft
