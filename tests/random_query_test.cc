// Differential fuzzing across every evaluation path in the system.
//
// A generator produces random valid MinXQuery programs (nested for/let,
// element constructors, sequences, paths over all three axes, predicates of
// all four kinds); each is run on random documents through:
//
//   1. the reference XQuery evaluator         (xquery/evaluator)
//   2. the translated MFT, interpreted        (translate + mft/interp)
//   3. the optimized MFT, interpreted         (+ mft/optimize)
//   4. the optimized MFT, streamed            (+ stream/engine)
//   5. the GCX baseline (when in fragment)    (gcx/gcx_engine)
//   6. the optimized MFT, sharded in parallel (+ parallel/, random shard
//      and thread counts, single-document and document-set shapes)
//   7. the optimized MFT through the QueryCache (service/query_cache):
//      cold lookup compiles, warm lookup hits — both byte-identical to the
//      direct CompiledQuery/streaming output
//   9. the lowered opcode engine vs the table engine (lower/): when the
//      plan lowers, a forced --engine=ops run must be byte-identical to a
//      forced table run; when it does not, the ops request must fall back
//      and still match
//
// All of these must produce identical serialized output (for the sharded
// paths: identical to the matching serial evaluation — see the in-line
// comments for the multi-tree forest contract). This is Theorem 1 and the
// engine-equivalence claims exercised over a much wider query space than
// the Figure 3 corpus.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "gcx/gcx_engine.h"
#include "lower/lower.h"
#include "service/query_cache.h"
#include "mft/interp.h"
#include "mft/optimize.h"
#include "parallel/sharded_executor.h"
#include "stream/engine.h"
#include "translate/translate.h"
#include "util/rng.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

// ---------------------------------------------------------------------------
// Random query generation
// ---------------------------------------------------------------------------

class QueryGen {
 public:
  explicit QueryGen(Rng* rng) : rng_(*rng) {}

  std::string Generate() {
    var_counter_ = 0;
    // Top level: an element wrapping one clause keeps programs printable.
    return "<out>{" + GenClause(3, "", {}) + "}</out>";
  }

 private:
  std::string FreshVar() { return "v" + std::to_string(++var_counter_); }

  std::string Label() {
    return std::string(1, static_cast<char>('a' + rng_.Below(4)));
  }

  std::string NodeTest() {
    switch (rng_.Below(8)) {
      case 0: return "*";
      case 1: return "text()";
      case 2: return "node()";
      default: return Label();
    }
  }

  std::string Axis(bool allow_fs) {
    switch (rng_.Below(allow_fs ? 5 : 4)) {
      case 0:
      case 1: return "/";
      case 2:
      case 3: return "//";
      default: return "/following-sibling::";
    }
  }

  std::string PredPath(int max_steps) {
    std::string p = ".";
    int steps = 1 + static_cast<int>(rng_.Below(
                        static_cast<std::uint64_t>(max_steps)));
    for (int i = 0; i < steps; ++i) p += Axis(true) + NodeTest();
    return p;
  }

  std::string Predicate() {
    switch (rng_.Below(4)) {
      case 0: return "[" + PredPath(2) + "]";
      case 1: return "[empty(" + PredPath(2) + ")]";
      case 2: return "[" + PredPath(1) + "/text()=\"x\"]";
      default: return "[" + PredPath(1) + "/text()!=\"x\"]";
    }
  }

  // A path from `var` (empty = $input). The first step from $input may not
  // be following-sibling only when anchored at the virtual root.
  std::string GenPath(const std::string& var) {
    std::string p = var.empty() ? "$input" : "$" + var;
    int steps = 1 + static_cast<int>(rng_.Below(3));
    for (int i = 0; i < steps; ++i) {
      p += Axis(!(var.empty() && i == 0)) + NodeTest();
      if (rng_.Chance(1, 4)) p += Predicate();
    }
    return p;
  }

  using Scope = std::vector<std::string>;

  // clause ::= for | let | ordpath | (query, query+)
  std::string GenClause(int depth, const std::string& nearest_for,
                        const Scope& scope) {
    if (depth <= 0) {
      return GenPathOrVar(nearest_for, scope);
    }
    switch (rng_.Below(6)) {
      case 0: {  // for
        std::string v = FreshVar();
        Scope inner = scope;
        inner.push_back(v);
        return "for $" + v + " in " + GenPath(nearest_for) + " return " +
               GenQuery(depth - 1, v, inner);
      }
      case 1: {  // let
        std::string v = FreshVar();
        Scope inner = scope;
        inner.push_back(v);
        return "let $" + v + " := " +
               GenQuery(depth - 1, nearest_for, scope) + " return " +
               GenQuery(depth - 1, nearest_for, inner);
      }
      case 2: {  // sequence
        return "(" + GenQuery(depth - 1, nearest_for, scope) + "," +
               GenQuery(depth - 1, nearest_for, scope) + ")";
      }
      default:
        return GenPathOrVar(nearest_for, scope);
    }
  }

  std::string GenPathOrVar(const std::string& nearest_for,
                           const Scope& scope) {
    // Bare variable references may use any in-scope variable.
    if (!scope.empty() && rng_.Chance(1, 3)) {
      return "$" + scope[rng_.Below(scope.size())];
    }
    return GenPath(nearest_for);
  }

  // query ::= element | clause
  std::string GenQuery(int depth, const std::string& nearest_for,
                       const Scope& scope) {
    if (depth > 0 && rng_.Chance(2, 5)) {
      std::string name = Label();
      std::string content;
      int items = static_cast<int>(rng_.Below(3));
      for (int i = 0; i < items; ++i) {
        switch (rng_.Below(3)) {
          case 0:
            content += "txt";
            break;
          case 1:
            content += "<leaf>k</leaf>";
            break;
          default:
            content += "{" + GenClause(depth - 1, nearest_for, scope) + "}";
        }
      }
      return "<" + name + ">" + content + "</" + name + ">";
    }
    return GenClause(depth, nearest_for, scope);
  }

  Rng& rng_;
  int var_counter_ = 0;
};

Forest RandomDoc(Rng* rng, int depth) {
  Forest f;
  int width = static_cast<int>(rng->Below(4));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(4))),
          RandomDoc(rng, depth - 1)));
    } else if (f.empty() || f.back().kind != NodeKind::kText) {
      static const char* kTexts[] = {"x", "y", "z"};
      f.push_back(Tree::Text(kTexts[rng->Below(3)]));
    }
  }
  return f;
}

class RandomQueryProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryProperty, AllEvaluationPathsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL + 9);
  QueryGen gen(&rng);
  std::string text = gen.Generate();
  // Crash diagnostics (gtest messages are lost on hard crashes).
  const bool debug = std::getenv("XQMFT_FUZZ_DEBUG") != nullptr;
  if (debug) std::fprintf(stderr, "query: %s\n", text.c_str());

  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status().ToString();
  const QueryExpr& query = *parsed.value();
  ASSERT_TRUE(ValidateQuery(query).ok()) << text;

  auto raw = TranslateQuery(query);
  ASSERT_TRUE(raw.ok()) << text << "\n" << raw.status().ToString();
  Mft opt = OptimizeMft(raw.value());
  // The parallel paths take the immutable plan artifact (warm dispatch is
  // structural there, not a call-site convention).
  auto plan_result = CompiledPlan::FromMft(opt);
  ASSERT_TRUE(plan_result.ok()) << text << "\n"
                                << plan_result.status().ToString();
  const CompiledPlan& plan = *plan_result.value();

  // Document set for the parallel cross-check (path 6b): every random doc
  // plus its serial streamed output.
  std::vector<ParallelInput> doc_set;
  std::string doc_set_serial;

  for (int d = 0; d < 3; ++d) {
    Forest doc = RandomDoc(&rng, 4);
    std::string xml = ForestToXml(doc);
    if (debug) std::fprintf(stderr, "doc: %s\n", xml.c_str());

    Result<Forest> reference = EvaluateQuery(query, doc);
    ASSERT_TRUE(reference.ok()) << text;
    StringSink want;
    EmitForest(reference.value(), &want);

    // 2. Raw MFT, interpreted.
    Result<Forest> raw_out = RunMft(raw.value(), doc);
    ASSERT_TRUE(raw_out.ok()) << text;
    StringSink raw_sink;
    EmitForest(raw_out.value(), &raw_sink);
    ASSERT_EQ(raw_sink.str(), want.str())
        << "raw MFT vs reference\nquery: " << text << "\ndoc: " << xml;

    // 3. Optimized MFT, interpreted.
    Result<Forest> opt_out = RunMft(opt, doc);
    ASSERT_TRUE(opt_out.ok()) << text;
    StringSink opt_sink;
    EmitForest(opt_out.value(), &opt_sink);
    ASSERT_EQ(opt_sink.str(), want.str())
        << "optimized MFT vs reference\nquery: " << text << "\ndoc: " << xml;

    // 4. Optimized MFT, streamed.
    StringSink stream_sink;
    Status st = StreamTransformString(opt, xml, &stream_sink);
    ASSERT_TRUE(st.ok()) << text << "\n" << st.ToString();
    ASSERT_EQ(stream_sink.str(), want.str())
        << "streaming vs reference\nquery: " << text << "\ndoc: " << xml;

    // 5. GCX baseline, when the query is inside its fragment.
    if (GcxSupports(query).ok()) {
      StringSink gcx_sink;
      Status gst = GcxTransformString(query, xml, &gcx_sink);
      ASSERT_TRUE(gst.ok()) << text << "\n" << gst.ToString();
      ASSERT_EQ(gcx_sink.str(), want.str())
          << "GCX vs reference\nquery: " << text << "\ndoc: " << xml;
    }

    // 6a. Single-document sharding at top-level forest boundaries, random
    // shard and thread counts. Parallel must match serial sharded
    // evaluation (threads = 1, same shard plan) exactly; a document with at
    // most one top-level tree cannot split, so there the sharded output
    // must equal the plain streamed output too.
    {
      StringSource doc_src(xml);
      std::string pretok;
      Status tst = PretokenizeXml(&doc_src, {}, &pretok);
      ASSERT_TRUE(tst.ok()) << tst.ToString();
      std::size_t shard_count = 1 + rng.Below(4);
      ParallelOptions serial_par;
      serial_par.threads = 1;
      StringSink sharded_serial;
      Status ss = StreamShardedPretokTransform(plan, pretok, shard_count,
                                               &sharded_serial, serial_par);
      ASSERT_TRUE(ss.ok()) << text << "\n" << ss.ToString();
      ParallelOptions par;
      par.threads = 2 + rng.Below(3);
      StringSink sharded_par;
      Status sp = StreamShardedPretokTransform(plan, pretok, shard_count,
                                               &sharded_par, par);
      ASSERT_TRUE(sp.ok()) << text << "\n" << sp.ToString();
      ASSERT_EQ(sharded_par.str(), sharded_serial.str())
          << "parallel vs serial sharded\nquery: " << text << "\ndoc: "
          << xml << "\nshards: " << shard_count;
      if (doc.size() <= 1) {
        ASSERT_EQ(sharded_par.str(), want.str())
            << "sharded vs reference (single tree)\nquery: " << text
            << "\ndoc: " << xml;
      }
    }

    doc_set.push_back(ParallelInput::XmlText(xml));
    doc_set_serial += stream_sink.str();
  }

  // 6b. Document-set sharding: the three random docs streamed through
  // parallel workers must concatenate to the serial per-doc outputs, in
  // input order.
  {
    ParallelOptions par;
    par.threads = 1 + rng.Below(4);
    StringSink many;
    Status st = StreamManyTransform(plan, doc_set, &many, par);
    ASSERT_TRUE(st.ok()) << text << "\n" << st.ToString();
    ASSERT_EQ(many.str(), doc_set_serial)
        << "document-set parallel vs serial\nquery: " << text
        << "\nthreads: " << par.threads;
  }

  // 7. Compile-once cache: a cold QueryCache lookup compiles a plan whose
  // output over the document set is byte-identical to the direct
  // CompiledQuery/streaming path; the warm lookup hits the same shared plan
  // (exactly one compile) and streams identically.
  {
    QueryCache cache;
    auto cold = cache.Lookup(text);
    ASSERT_TRUE(cold.ok()) << text << "\n" << cold.status().ToString();
    EXPECT_FALSE(cold.value().hit);
    StringSink cold_sink;
    Status cs = cold.value().plan->StreamMany(doc_set, &cold_sink);
    ASSERT_TRUE(cs.ok()) << text << "\n" << cs.ToString();
    ASSERT_EQ(cold_sink.str(), doc_set_serial)
        << "cached plan (cold) vs direct\nquery: " << text;

    auto warm = cache.Lookup(text);
    ASSERT_TRUE(warm.ok()) << text;
    EXPECT_TRUE(warm.value().hit);
    EXPECT_EQ(warm.value().plan.get(), cold.value().plan.get())
        << "warm lookup must share the cold lookup's plan";
    StringSink warm_sink;
    Status ws = warm.value().plan->StreamMany(doc_set, &warm_sink);
    ASSERT_TRUE(ws.ok()) << text << "\n" << ws.ToString();
    ASSERT_EQ(warm_sink.str(), doc_set_serial)
        << "cached plan (warm) vs direct\nquery: " << text;
    EXPECT_EQ(cache.stats().compiles, 1u) << text;
  }

  // 8. Multi-query single pass: the random query paired with a second,
  // independently generated random query, both streaming each document in
  // ONE pass (shared tokenization, union projection automaton derived from
  // the query texts). Every engine's output must be byte-identical to its
  // own serial run — the projection may only skip what no query can see.
  {
    QueryGen gen2(&rng);
    std::string text2 = gen2.Generate();
    if (debug) std::fprintf(stderr, "query2: %s\n", text2.c_str());
    auto plan_a = CompiledPlan::Compile(text);
    ASSERT_TRUE(plan_a.ok()) << text << "\n" << plan_a.status().ToString();
    auto plan_b = CompiledPlan::Compile(text2);
    ASSERT_TRUE(plan_b.ok()) << text2 << "\n" << plan_b.status().ToString();
    std::vector<const CompiledPlan*> pair{plan_a.value().get(),
                                          plan_b.value().get()};
    for (const ParallelInput& doc : doc_set) {
      StringSink serial_a, serial_b;
      ASSERT_TRUE(plan_a.value()->StreamString(doc.value, &serial_a).ok())
          << text;
      ASSERT_TRUE(plan_b.value()->StreamString(doc.value, &serial_b).ok())
          << text2;
      StringSink multi_a, multi_b;
      std::vector<OutputSink*> sinks{&multi_a, &multi_b};
      StringSource source(doc.value);
      Status st = StreamAllTransform(pair, &source, sinks);
      ASSERT_TRUE(st.ok()) << text << "\n+ " << text2 << "\n"
                           << st.ToString();
      ASSERT_EQ(multi_a.str(), serial_a.str())
          << "multi-query vs serial (query 1)\nquery: " << text
          << "\nquery2: " << text2 << "\ndoc: " << doc.value;
      ASSERT_EQ(multi_b.str(), serial_b.str())
          << "multi-query vs serial (query 2)\nquery: " << text
          << "\nquery2: " << text2 << "\ndoc: " << doc.value;
    }
  }

  // 9. Lowered opcode engine vs table engine: a forced table run and a
  // forced ops run must be byte-identical on every document. When the plan
  // does not lower, the forced ops run exercises the silent fall-back to
  // the table machine and must still match. The per-run stats confirm
  // which engine actually served.
  {
    std::string why;
    const lower::LoweredPlan* lp = lower::GetLoweredPlan(opt, &why);
    const bool lowers = lp != nullptr;
    const bool hybrid = lowers && lp->hybrid;
    if (debug && !lowers) std::fprintf(stderr, "no lowering: %s\n", why.c_str());
    // The classification and its note must agree: hybrid plans carry bridge
    // sites and say so; full plans say "full".
    if (lowers) {
      if (hybrid) {
        ASSERT_FALSE(lp->bridge_sites.empty()) << text;
        ASSERT_NE(lp->bridge_mft, nullptr) << text;
        ASSERT_NE(why.find("hybrid"), std::string::npos) << text << ": " << why;
      } else {
        ASSERT_EQ(why, "full") << text;
      }
    }
    for (const ParallelInput& doc : doc_set) {
      StreamOptions table_opts;
      table_opts.engine = EngineChoice::kTable;
      StringSink table_sink;
      StreamStats table_stats;
      Status ts = StreamTransformString(opt, doc.value, &table_sink,
                                        table_opts, &table_stats);
      ASSERT_TRUE(ts.ok()) << text << "\n" << ts.ToString();
      ASSERT_FALSE(table_stats.used_ops_engine) << text;

      StreamOptions ops_opts;
      ops_opts.engine = EngineChoice::kOps;
      StringSink ops_sink;
      StreamStats ops_stats;
      Status os = StreamTransformString(opt, doc.value, &ops_sink, ops_opts,
                                        &ops_stats);
      ASSERT_TRUE(os.ok()) << text << "\n" << os.ToString();
      ASSERT_EQ(ops_stats.used_ops_engine, lowers) << text;
      ASSERT_EQ(ops_stats.hybrid_plan, hybrid) << text;
      if (lowers && !hybrid) {
        // Fully lowered runs never enter the table machine.
        ASSERT_EQ(ops_stats.bridge_runs, 0u) << text;
        ASSERT_EQ(ops_stats.cells_created, 0u) << text;
        ASSERT_EQ(ops_stats.exprs_created, 0u) << text;
      }
      ASSERT_EQ(ops_sink.str(), table_sink.str())
          << "ops engine vs table engine\nquery: " << text
          << "\ndoc: " << doc.value << "\nlowers: " << lowers
          << "\nwhy: " << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryProperty, ::testing::Range(0, 80));

}  // namespace
}  // namespace xqmft
