// Tests for the hardened serving stack (src/net/ + the robustness layers
// under it): the engines' cancelled-run contract (sticky status, populated
// stats, no output past the last committed byte — pinned for both cores),
// deadline trips mid-document within tolerance, the FaultInjectingSource
// matrix, the transport-independent wire layer's limits and deadline
// arming, the stdin ServeLoop's hardening, and the NetServer itself:
// admission control with exact shed counts, disconnect-cancels-run,
// graceful-drain ordering, backpressure limits, per-request fault
// isolation, and pipelined in-order responses. The suite runs under the
// tsan preset, so the timing assertions widen under that sanitizer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "net/scheduler.h"
#include "net/server.h"
#include "service/fault.h"
#include "service/json.h"
#include "service/serve.h"
#include "service/wire.h"
#include "stream/engine.h"
#include "util/cancel.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

#if defined(__SANITIZE_THREAD__)
#define XQMFT_NET_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XQMFT_NET_TEST_TSAN 1
#endif
#endif

namespace xqmft {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

// Timing tolerances: the acceptance bound (deadline + 50ms) holds on a
// plain build; sanitizers slow the cooperative checks enough to need slack.
#ifdef XQMFT_NET_TEST_TSAN
constexpr double kDeadlineToleranceMs = 2000.0;
#else
constexpr double kDeadlineToleranceMs = 50.0;
#endif

const char kQuery[] = "<out>{$input//a}</out>";
const char kSmallDoc[] = "<doc><a>1</a><b>2</b><a>3</a></doc>";
const char kSmallOut[] = "<out><a>1</a><a>3</a></out>";

// A document with `n` hits: big enough values keep a run streaming long
// past any deadline or cancel point the tests arm.
std::string BigDoc(int n) {
  std::string doc = "<doc>";
  for (int i = 0; i < n; ++i) doc += "<a>payload-payload</a>";
  doc += "</doc>";
  return doc;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  Clock::time_point start = Clock::now();
  while (!pred()) {
    if (ElapsedMs(start) > timeout_ms) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Engine cancelled-run contract (both cores)
// ---------------------------------------------------------------------------

// Mid-stream explicit cancel, driven push-mode so the trip point is exact:
// the status is sticky, Finish still fills stats, and the sink holds
// exactly the bytes committed before the trip — nothing is pumped,
// replayed, or flushed afterwards.
void CheckCancelledRunContract(EngineChoice choice, bool expect_ops) {
  auto plan = CompiledPlan::Compile(kQuery);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  StreamOptions options;
  options.engine = choice;
  CancelToken token;
  options.cancel = &token;
  options.cancel_check_events = 1;  // trip at the very next event

  StringSink sink;
  Engine engine(plan.value()->mft(), &sink, options);
  const std::string doc = BigDoc(500);
  StringSource source(doc);
  SaxParser parser(&source, {});
  parser.BindSymbols(engine.symbols());

  ASSERT_TRUE(engine.Prime().ok());
  XmlEvent event;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(parser.Next(&event).ok());
    ASSERT_TRUE(engine.Feed(event).ok()) << "event " << i;
  }
  const std::string committed = sink.str();
  EXPECT_FALSE(committed.empty());  // streaming already emitted hits

  token.Cancel();
  ASSERT_TRUE(parser.Next(&event).ok());
  Status tripped = engine.Feed(event);
  EXPECT_EQ(tripped.code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.str(), committed);

  // Sticky: further feeds return the same status and emit nothing.
  ASSERT_TRUE(parser.Next(&event).ok());
  EXPECT_EQ(engine.Feed(event).code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.str(), committed);

  // Finish keeps the status, fills stats, and does not flush past the
  // last committed byte.
  StreamStats stats;
  EXPECT_EQ(engine.Finish(&stats).code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.str(), committed);
  EXPECT_GT(stats.rule_applications, 0u);
  EXPECT_EQ(stats.output_events, engine.output_events());
  EXPECT_EQ(stats.used_ops_engine, expect_ops);
}

TEST(EngineCancelContractTest, TableMachineStopsAtCommittedByte) {
  CheckCancelledRunContract(EngineChoice::kTable, /*expect_ops=*/false);
}

TEST(EngineCancelContractTest, OpsEngineStopsAtCommittedByte) {
  CheckCancelledRunContract(EngineChoice::kOps, /*expect_ops=*/true);
}

TEST(EngineCancelContractTest, ExpiredDeadlineTripsAsDeadlineExceeded) {
  for (EngineChoice choice : {EngineChoice::kTable, EngineChoice::kOps}) {
    auto plan = CompiledPlan::Compile(kQuery);
    ASSERT_TRUE(plan.ok());
    StreamOptions options;
    options.engine = choice;
    CancelToken token;
    token.SetDeadlineAfterMs(0);  // already expired: first check trips
    options.cancel = &token;
    options.cancel_check_events = 1;
    StringSink sink;
    StreamStats stats;
    Status st = StreamTransformString(plan.value()->mft(), BigDoc(300),
                                      &sink, options, &stats);
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
    // The run aborted well before consuming the input.
    EXPECT_LT(stats.bytes_in, BigDoc(300).size());
  }
}

TEST(DeadlineTest, TripsMidDocumentWithinTolerance) {
  // A document that streams far longer than the deadline; the run must
  // abort within deadline + tolerance, with the output incomplete.
  auto plan = CompiledPlan::Compile(kQuery);
  ASSERT_TRUE(plan.ok());
  const std::string doc = BigDoc(200000);  // ~3.6 MB

  StringSink full;
  ASSERT_TRUE(
      StreamTransformString(plan.value()->mft(), doc, &full).ok());

  constexpr std::uint64_t kDeadlineMs = 10;
  StreamOptions options;
  CancelToken token;
  token.SetDeadlineAfterMs(kDeadlineMs);
  options.cancel = &token;
  StringSink sink;
  Clock::time_point start = Clock::now();
  Status st = StreamTransformString(plan.value()->mft(), doc, &sink, options);
  double elapsed = ElapsedMs(start);

  if (st.ok()) {
    // The whole run beat the deadline — a machine that fast cannot
    // demonstrate a trip on this document; nothing to assert.
    GTEST_SKIP() << "document streamed in " << elapsed << "ms";
  }
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, kDeadlineMs + kDeadlineToleranceMs);
  EXPECT_LT(sink.str().size(), full.str().size());
}

// ---------------------------------------------------------------------------
// FaultInjectingSource
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ParsesKindNames) {
  FaultSpec::Kind kind;
  EXPECT_TRUE(ParseFaultKind("none", &kind));
  EXPECT_EQ(kind, FaultSpec::Kind::kNone);
  EXPECT_TRUE(ParseFaultKind("truncate", &kind));
  EXPECT_EQ(kind, FaultSpec::Kind::kTruncate);
  EXPECT_TRUE(ParseFaultKind("error", &kind));
  EXPECT_EQ(kind, FaultSpec::Kind::kError);
  EXPECT_TRUE(ParseFaultKind("stall", &kind));
  EXPECT_EQ(kind, FaultSpec::Kind::kStall);
  EXPECT_FALSE(ParseFaultKind("explode", &kind));
}

TEST(FaultInjectionTest, TruncateTurnsTheTailIntoEndOfDocument) {
  StringSource source(kSmallDoc);
  SaxParser parser(&source, {});
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTruncate;
  spec.at_event = 3;
  FaultInjectingSource faulty(&parser, spec);

  XmlEvent event;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(faulty.Next(&event).ok());
    EXPECT_NE(event.type, XmlEventType::kEndOfDocument) << "event " << i;
  }
  ASSERT_TRUE(faulty.Next(&event).ok());
  EXPECT_EQ(event.type, XmlEventType::kEndOfDocument);
  EXPECT_EQ(faulty.events_produced(), 4u);
}

TEST(FaultInjectionTest, ErrorSurfacesAtTheChosenEvent) {
  StringSource source(kSmallDoc);
  SaxParser parser(&source, {});
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kError;
  spec.at_event = 2;
  FaultInjectingSource faulty(&parser, spec);

  XmlEvent event;
  ASSERT_TRUE(faulty.Next(&event).ok());
  ASSERT_TRUE(faulty.Next(&event).ok());
  Status st = faulty.Next(&event);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("injected source fault"), std::string::npos);
}

TEST(FaultInjectionTest, StallDelaysOnceAndPassesThrough) {
  const std::string want = [&] {
    StringSource source(kSmallDoc);
    SaxParser parser(&source, {});
    std::string events;
    XmlEvent event;
    do {
      EXPECT_TRUE(parser.Next(&event).ok());
      events += static_cast<char>('0' + static_cast<int>(event.type));
    } while (event.type != XmlEventType::kEndOfDocument);
    return events;
  }();

  StringSource source(kSmallDoc);
  SaxParser parser(&source, {});
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kStall;
  spec.at_event = 1;
  spec.stall_ms = 60;
  FaultInjectingSource faulty(&parser, spec);

  Clock::time_point start = Clock::now();
  std::string events;
  XmlEvent event;
  do {
    ASSERT_TRUE(faulty.Next(&event).ok());
    events += static_cast<char>('0' + static_cast<int>(event.type));
  } while (event.type != XmlEventType::kEndOfDocument);
  EXPECT_GE(ElapsedMs(start), 60.0);
  EXPECT_EQ(events, want);  // a stall reorders nothing
}

// ---------------------------------------------------------------------------
// Wire layer (transport-independent request handling)
// ---------------------------------------------------------------------------

std::string HandleOne(RequestHandler* handler, const std::string& line,
                      StatusCode* code = nullptr) {
  std::string out;
  StatusCode c = handler->HandleLine(line, nullptr, &out);
  if (code != nullptr) *code = c;
  return out;
}

TEST(WireTest, StatusTokensAreStable) {
  EXPECT_STREQ(WireStatusString(StatusCode::kOk), "ok");
  EXPECT_STREQ(WireStatusString(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(WireStatusString(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(WireStatusString(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(WireStatusString(StatusCode::kUnavailable), "unavailable");
}

TEST(WireTest, InlineXmlBytesAreCapped) {
  QueryService service;
  WireOptions options;
  options.limits.max_inline_xml_bytes = 16;
  RequestHandler handler(&service, options);
  StatusCode code;
  std::string out = HandleOne(
      &handler,
      std::string("{\"query\":\"<o>{$input/a}</o>\",\"xml\":[\"") +
          "<doc><a>oversized-document</a></doc>" + "\"]}",
      &code);
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  EXPECT_NE(out.find("inline \\\"xml\\\" documents exceed"),
            std::string::npos);
  EXPECT_NE(out.find("\"status\":\"invalid_argument\""), std::string::npos);
}

TEST(WireTest, FaultFieldRequiresOptIn) {
  QueryService service;
  RequestHandler handler(&service, WireOptions{});
  StatusCode code;
  std::string out = HandleOne(
      &handler,
      "{\"query\":\"<o/>\",\"xml\":[\"<a/>\"],"
      "\"fault\":{\"kind\":\"stall\",\"stall_ms\":10}}",
      &code);
  EXPECT_EQ(code, StatusCode::kInvalidArgument);
  EXPECT_NE(out.find("fault injection is disabled"), std::string::npos);
}

TEST(WireTest, DeadlineAbortsAStalledRequest) {
  QueryService service;
  WireOptions options;
  options.allow_fault_injection = true;
  RequestHandler handler(&service, options);
  // The stall holds the stream well past the deadline; the next
  // cooperative check after it trips.
  StatusCode code;
  std::string out = HandleOne(
      &handler,
      "{\"id\":7,\"query\":\"<out>{$input//a}</out>\","
      "\"xml\":[\"" + BigDoc(300) + "\"],"
      "\"deadline_ms\":20,"
      "\"fault\":{\"kind\":\"stall\",\"at_event\":1,\"stall_ms\":120}}",
      &code);
  EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(out.find("\"id\":7"), std::string::npos);
  EXPECT_NE(out.find("\"status\":\"deadline_exceeded\""), std::string::npos);
}

TEST(WireTest, BatchDeadlineCoversEveryEntry) {
  QueryService service;
  WireOptions options;
  options.limits.max_line_bytes = 0;        // the document IS the line
  options.limits.max_inline_xml_bytes = 0;  // and the payload
  RequestHandler handler(&service, options);
  // A batch over a document big enough that a 1ms budget cannot finish it:
  // the shared pump trips and every live entry reports the deadline.
  std::string line = "{\"queries\":[{\"query\":\"<a>{$input//a}</a>\","
                     "\"id\":1},{\"query\":\"<b>{$input//b}</b>\",\"id\":2}],"
                     "\"xml\":[\"" + BigDoc(200000) + "\"],\"deadline_ms\":1}";
  StatusCode code;
  std::string out = HandleOne(&handler, line, &code);
  if (code == StatusCode::kOk) {
    GTEST_SKIP() << "batch finished inside 1ms";
  }
  EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(out.find("\"id\":1,\"ok\":false"), std::string::npos);
  EXPECT_NE(out.find("\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(out.find("deadline_exceeded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Stdin ServeLoop hardening
// ---------------------------------------------------------------------------

std::string ServeOnce(const std::string& input, const ServeOptions& options) {
  std::FILE* in = ::fmemopen(const_cast<char*>(input.data()), input.size(),
                             "r");
  EXPECT_NE(in, nullptr);
  char* out_data = nullptr;
  std::size_t out_size = 0;
  std::FILE* out = ::open_memstream(&out_data, &out_size);
  EXPECT_NE(out, nullptr);
  Status st = ServeLoop(in, out, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::fclose(in);
  std::fclose(out);
  std::string result(out_data, out_size);
  std::free(out_data);
  return result;
}

TEST(ServeLoopTest, OverlongLineIsRejectedWithoutKillingTheSession) {
  ServeOptions options;
  options.limits.max_line_bytes = 256;
  std::string input(500, 'x');  // far past the limit, not even JSON
  input += "\n";
  input += "{\"query\":\"<out>{$input//a}</out>\",\"xml\":[\"" +
           std::string(kSmallDoc) + "\"]}\n";
  std::string out = ServeOnce(input, options);
  // First response rejects the oversized line; the session continues and
  // the second request succeeds.
  EXPECT_NE(out.find("exceeds the 256-byte limit"), std::string::npos);
  EXPECT_NE(out.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(out.find(kSmallOut), std::string::npos);
}

TEST(ServeLoopTest, InlineXmlCapAppliesOnStdin) {
  ServeOptions options;
  options.limits.max_inline_xml_bytes = 8;
  std::string out = ServeOnce(
      "{\"query\":\"<o/>\",\"xml\":[\"<doc><a>123</a></doc>\"]}\n", options);
  EXPECT_NE(out.find("\"status\":\"invalid_argument\""), std::string::npos);
}

TEST(ServeLoopTest, DeadlineMsAbortsAStalledRequest) {
  ServeOptions options;
  options.allow_fault_injection = true;
  std::string out = ServeOnce(
      "{\"query\":\"<out>{$input//a}</out>\",\"xml\":[\"" + BigDoc(300) +
          "\"],\"deadline_ms\":15,"
          "\"fault\":{\"kind\":\"stall\",\"at_event\":1,\"stall_ms\":90}}\n",
      options);
  EXPECT_NE(out.find("\"status\":\"deadline_exceeded\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// NetServer
// ---------------------------------------------------------------------------

// A blocking test client over one socket, with just enough response-frame
// awareness to read interleaved successes (header + payload) and errors.
class TestClient {
 public:
  TestClient() = default;
  explicit TestClient(int fd) : fd_(fd) {}
  TestClient(TestClient&& other) noexcept
      : fd_(other.fd_), buf_(std::move(other.buf_)) {
    other.fd_ = -1;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  static TestClient ConnectTcp(int port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return TestClient();
    }
    return TestClient(fd);
  }

  static TestClient ConnectUnix(const std::string& path) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return TestClient();
    }
    return TestClient(fd);
  }

  bool ok() const { return fd_ >= 0; }

  void Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // server closed on us: the test asserts via reads
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  // Abort: RST on close, so the server sees a hard disconnect rather than
  // an orderly half-close.
  void AbortClose() {
    struct linger lg {1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      if (!Fill()) return false;
    }
  }

  bool ReadBytes(std::size_t n, std::string* out) {
    while (buf_.size() < n) {
      if (!Fill()) return false;
    }
    *out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
  }

  struct WireResponse {
    std::string header;
    std::string payload;  // successful query responses only
  };

  // Reads one framed response: the JSON header line, plus `bytes` payload
  // bytes and their trailing newline when the header announces them.
  bool ReadResponse(WireResponse* r) {
    r->payload.clear();
    if (!ReadLine(&r->header)) return false;
    std::size_t pos = r->header.find("\"bytes\":");
    if (pos == std::string::npos) return true;
    std::size_t n = 0;
    for (pos += 8; pos < r->header.size() && r->header[pos] >= '0' &&
                   r->header[pos] <= '9';
         ++pos) {
      n = n * 10 + static_cast<std::size_t>(r->header[pos] - '0');
    }
    std::string body;
    if (!ReadBytes(n + 1, &body)) return false;  // payload + newline
    r->payload = body.substr(0, n);
    return true;
  }

  std::string ReadAll() {
    while (Fill()) {}
    std::string all = std::move(buf_);
    buf_.clear();
    return all;
  }

 private:
  bool Fill() {
    char chunk[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or reset
    }
  }

  int fd_ = -1;
  std::string buf_;
};

// Starts the server on an ephemeral loopback port and runs its event loop
// on a background thread; the destructor drains and joins.
class ServerFixture {
 public:
  explicit ServerFixture(NetServerOptions options)
      : server_(PrepareOptions(std::move(options))) {
    Status st = server_.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
    thread_ = std::thread([this] { run_status_ = server_.Run(); });
  }

  ~ServerFixture() { Join(); }

  // Requests shutdown (if not already done) and waits for Run to return.
  Status Join() {
    if (thread_.joinable()) {
      server_.RequestShutdown();
      thread_.join();
    }
    return run_status_;
  }

  NetServer& server() { return server_; }
  TestClient Connect() { return TestClient::ConnectTcp(server_.port()); }

 private:
  static NetServerOptions PrepareOptions(NetServerOptions options) {
    if (options.tcp_port < 0 && options.unix_path.empty()) {
      options.tcp_port = 0;  // ephemeral loopback
    }
    return options;
  }

  NetServer server_;
  std::thread thread_;
  Status run_status_;
};

std::string SimpleRequest(int id) {
  return "{\"id\":" + std::to_string(id) + ",\"query\":\"" + kQuery +
         "\",\"xml\":[\"" + kSmallDoc + "\"]}\n";
}

// A request whose run holds a worker busy for `stall_ms` (fault injection
// must be enabled server-side). The document carries enough events after
// the stall that a cancelled token is observed by the cooperative checks.
std::string StallRequest(int id, int stall_ms) {
  return "{\"id\":" + std::to_string(id) + ",\"query\":\"" + kQuery +
         "\",\"xml\":[\"" + BigDoc(200) +
         "\"],\"fault\":{\"kind\":\"stall\",\"at_event\":1,\"stall_ms\":" +
         std::to_string(stall_ms) + "}}\n";
}

TEST(NetServerTest, StartValidatesConfiguration) {
  {
    NetServer none{NetServerOptions{}};
    EXPECT_FALSE(none.Start().ok());  // no listener configured
  }
  {
    NetServerOptions options;
    options.tcp_port = 0;
    options.tcp_address = "not-an-address";
    NetServer bad(std::move(options));
    EXPECT_FALSE(bad.Start().ok());
  }
  {
    NetServerOptions options;
    options.unix_path = std::string(200, 'p');  // past sun_path
    NetServer bad(std::move(options));
    EXPECT_FALSE(bad.Start().ok());
  }
}

TEST(NetServerTest, TcpRoundTripWithStatsCommand) {
  ServerFixture fx{NetServerOptions{}};
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(SimpleRequest(1));
  client.Send("{\"cmd\":\"server_stats\"}\n");
  client.HalfClose();

  TestClient::WireResponse r1, r2;
  ASSERT_TRUE(client.ReadResponse(&r1));
  EXPECT_NE(r1.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r1.payload, kSmallOut);
  ASSERT_TRUE(client.ReadResponse(&r2));
  EXPECT_NE(r2.header.find("\"server\":{"), std::string::npos);
  // The execution-core split is part of the stats payload.
  EXPECT_NE(r2.header.find("\"ops_runs\":"), std::string::npos);
  EXPECT_NE(r2.header.find("\"hybrid_runs\":"), std::string::npos);
  EXPECT_NE(r2.header.find("\"table_runs\":"), std::string::npos);
  // Half-close: the server delivers everything, then closes.
  EXPECT_TRUE(client.ReadAll().empty());

  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.connections, 1u);
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.inline_cmds, 1u);
  EXPECT_TRUE(WaitFor([&] {
    return fx.server().counters().completed_ok == 1;
  }));
  // kQuery lowers fully, so the run counts as an opcode-core run.
  c = fx.server().counters();
  EXPECT_EQ(c.ops_runs, 1u);
  EXPECT_EQ(c.hybrid_runs, 0u);
  EXPECT_EQ(c.table_runs, 0u);
}

TEST(NetServerTest, UnixSocketRoundTrip) {
  NetServerOptions options;
  options.tcp_port = -1;
  options.unix_path = testing::TempDir() + "xqmft_net_test_" +
                      std::to_string(::getpid()) + ".sock";
  ServerFixture fx(std::move(options));
  TestClient client = TestClient::ConnectUnix(fx.server().unix_path());
  ASSERT_TRUE(client.ok());
  client.Send(SimpleRequest(5));
  client.HalfClose();
  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":5,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r.payload, kSmallOut);
  // The socket file is removed on shutdown.
  ASSERT_TRUE(fx.Join().ok());
  EXPECT_NE(::access(fx.server().unix_path().c_str(), F_OK), 0);
}

TEST(NetServerTest, QueueWaitCountsAgainstTheDeadline) {
  // One worker, held busy by a stalled run: a request with a deadline
  // shorter than its queue wait is dead on arrival at the worker — the
  // pre-execution check rejects it without compiling or streaming.
  NetServerOptions options;
  options.workers = 1;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(StallRequest(1, 400));
  // Wait until the worker holds request 1, so request 2 queues.
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));
  std::string second = "{\"id\":2,\"query\":\"" + std::string(kQuery) +
                       "\",\"xml\":[\"" + kSmallDoc +
                       "\"],\"deadline_ms\":30}\n";
  client.Send(second);
  client.HalfClose();

  TestClient::WireResponse r1, r2;
  ASSERT_TRUE(client.ReadResponse(&r1));
  EXPECT_NE(r1.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&r2));
  EXPECT_NE(r2.header.find("\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(r2.header.find("\"status\":\"deadline_exceeded\""),
            std::string::npos);
  EXPECT_EQ(fx.server().counters().deadline_exceeded_runs, 1u);
}

TEST(NetServerTest, QueueFullShedsWithExactCounts) {
  // workers=1 and queue_limit=1: one running, one queued, everything else
  // sheds with "overloaded" — exact counts, not approximations.
  NetServerOptions options;
  options.workers = 1;
  options.queue_limit = 1;
  options.retry_after_ms = 77;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(StallRequest(1, 700));
  // The stats poll runs on a second connection: the first connection's
  // responses are blocked behind request 1 (in-order delivery).
  TestClient stats = fx.Connect();
  ASSERT_TRUE(stats.ok());
  // Wait until the worker picked up request 1 (queue back to empty).
  ASSERT_TRUE(WaitFor([&] {
    stats.Send("{\"cmd\":\"server_stats\"}\n");
    TestClient::WireResponse r;
    if (!stats.ReadResponse(&r)) return false;
    return r.header.find("\"admitted\":1") != std::string::npos &&
           r.header.find("\"queued\":0") != std::string::npos;
  }));

  client.Send(SimpleRequest(2));  // fills the queue
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 2; }));
  client.Send(SimpleRequest(3));  // shed
  client.Send(SimpleRequest(4));  // shed
  client.HalfClose();

  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":2,\"ok\":true"), std::string::npos);
  for (int id : {3, 4}) {
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_NE(r.header.find("\"id\":" + std::to_string(id) + ",\"ok\":false"),
              std::string::npos);
    EXPECT_NE(r.header.find("\"status\":\"overloaded\""), std::string::npos);
    EXPECT_NE(r.header.find("\"retry_after_ms\":77"), std::string::npos);
  }

  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.rejected_overload, 2u);
  EXPECT_EQ(c.completed_ok, 2u);
}

TEST(NetServerTest, DisconnectCancelsQueuedAndInflightRuns) {
  NetServerOptions options;
  options.workers = 1;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  // Connection A holds the worker; connection B queues one request and
  // then resets. B's queued run must be cancelled — the worker's
  // pre-execution check observes the tripped token and skips the work.
  TestClient a = fx.Connect();
  ASSERT_TRUE(a.ok());
  a.Send(StallRequest(1, 500));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  TestClient b = fx.Connect();
  ASSERT_TRUE(b.ok());
  b.Send(SimpleRequest(2));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 2; }));
  b.AbortClose();

  EXPECT_TRUE(WaitFor([&] {
    return fx.server().counters().cancelled_runs == 1;
  }));
  EXPECT_EQ(fx.server().counters().disconnects_inflight, 1u);

  // Connection A is unaffected: its response still arrives.
  a.HalfClose();
  TestClient::WireResponse r;
  ASSERT_TRUE(a.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":1,\"ok\":true"), std::string::npos);
}

TEST(NetServerTest, GracefulDrainDeliversInflightBeforeReturning) {
  NetServerOptions options;
  options.workers = 1;
  options.allow_fault_injection = true;
  options.drain_ms = 10000;
  ServerFixture fx(std::move(options));

  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(StallRequest(1, 300));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  fx.server().RequestShutdown();
  // Drain has begun once the listeners are gone (connects start failing);
  // only then is request 2 guaranteed to hit the reject path.
  ASSERT_TRUE(WaitFor(
      [&] { return !TestClient::ConnectTcp(fx.server().port()).ok(); }));
  // New work on the still-open connection is rejected while draining.
  client.Send(SimpleRequest(2));

  TestClient::WireResponse r1, r2;
  ASSERT_TRUE(client.ReadResponse(&r1));
  EXPECT_NE(r1.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r1.payload, "<out>" + [] {
    std::string hits;
    for (int i = 0; i < 200; ++i) hits += "<a>payload-payload</a>";
    return hits;
  }() + "</out>");
  ASSERT_TRUE(client.ReadResponse(&r2));
  EXPECT_NE(r2.header.find("\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(r2.header.find("\"status\":\"shutting_down\""),
            std::string::npos);

  ASSERT_TRUE(fx.Join().ok());
  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.completed_ok, 1u);
  EXPECT_EQ(c.rejected_shutdown, 1u);
  // Drained listeners are gone: a fresh connection is refused.
  EXPECT_FALSE(TestClient::ConnectTcp(fx.server().port()).ok());
}

TEST(NetServerTest, DrainDeadlineCancelsStragglers) {
  NetServerOptions options;
  options.workers = 1;
  options.allow_fault_injection = true;
  options.drain_ms = 40;  // far shorter than the stalled run
  ServerFixture fx(std::move(options));

  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(StallRequest(1, 600));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  Clock::time_point start = Clock::now();
  ASSERT_TRUE(fx.Join().ok());
  // Run returned once the stalled worker observed its cancelled token —
  // bounded by the stall, nowhere near a full run, and the outcome is
  // counted as a cancellation.
  EXPECT_LT(ElapsedMs(start), 5000.0);
  EXPECT_EQ(fx.server().counters().cancelled_runs, 1u);
  EXPECT_EQ(fx.server().counters().completed_ok, 0u);
}

TEST(NetServerTest, OverlongLineIsRejectedAndTheConnectionContinues) {
  NetServerOptions options;
  options.limits.max_line_bytes = 128;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(std::string(400, 'x') + "\n");
  client.Send(SimpleRequest(1));
  client.HalfClose();

  TestClient::WireResponse r1, r2;
  ASSERT_TRUE(client.ReadResponse(&r1));
  EXPECT_NE(r1.header.find("exceeds the 128-byte limit"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&r2));
  EXPECT_NE(r2.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r2.payload, kSmallOut);
  EXPECT_EQ(fx.server().counters().rejected_line_length, 1u);
}

TEST(NetServerTest, InlineXmlCapAppliesOverTheWire) {
  NetServerOptions options;
  options.limits.max_inline_xml_bytes = 8;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(SimpleRequest(1));  // kSmallDoc is larger than 8 bytes
  client.HalfClose();
  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"status\":\"invalid_argument\""),
            std::string::npos);
}

TEST(NetServerTest, FaultMatrixLeavesTheServerServing) {
  // One request per fault kind plus a healthy one, all on one connection:
  // every fault's blast radius is its own request, the healthy request and
  // the connection survive, and a fresh connection still works after.
  NetServerOptions options;
  options.workers = 2;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());

  auto fault_request = [](int id, const char* kind) {
    return "{\"id\":" + std::to_string(id) + ",\"query\":\"" +
           std::string(kQuery) + "\",\"xml\":[\"" + kSmallDoc +
           "\"],\"fault\":{\"kind\":\"" + kind +
           "\",\"at_event\":3,\"stall_ms\":30}}\n";
  };
  client.Send(fault_request(1, "truncate"));
  client.Send(fault_request(2, "error"));
  client.Send(fault_request(3, "stall"));
  client.Send(SimpleRequest(4));
  client.HalfClose();

  // Responses arrive in request order whatever the workers did.
  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":1,"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":2,\"ok\":false"), std::string::npos);
  EXPECT_NE(r.header.find("injected source fault"), std::string::npos);
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":3,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r.payload, kSmallOut);  // a stall is only slow, never wrong
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":4,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r.payload, kSmallOut);

  TestClient fresh = fx.Connect();
  ASSERT_TRUE(fresh.ok());
  fresh.Send(SimpleRequest(9));
  fresh.HalfClose();
  ASSERT_TRUE(fresh.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":9,\"ok\":true"), std::string::npos);
}

TEST(NetServerTest, PipelinedResponsesStayInRequestOrder) {
  // Four pipelined requests finishing in reverse order (the first stalls
  // longest) must come back 1, 2, 3, 4.
  NetServerOptions options;
  options.workers = 4;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(StallRequest(1, 300));
  client.Send(StallRequest(2, 150));
  client.Send(StallRequest(3, 40));
  client.Send(SimpleRequest(4));
  client.HalfClose();
  for (int id = 1; id <= 4; ++id) {
    TestClient::WireResponse r;
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_NE(r.header.find("\"id\":" + std::to_string(id) + ","),
              std::string::npos)
        << "response " << id << " header: " << r.header;
  }
}

// ---------------------------------------------------------------------------
// Batching scheduler (net/scheduler.h) and the admission-path fixes
// ---------------------------------------------------------------------------

TEST(RetryHintTest, FloorBeforeSamplesThenScalesMonotonically) {
  RetryHint hint(50);
  // Before any completion is observed the hint is the configured floor,
  // whatever the depth — cold-start shedding keeps the static contract.
  EXPECT_EQ(hint.HintMs(0), 50u);
  EXPECT_EQ(hint.HintMs(100), 50u);
  EXPECT_DOUBLE_EQ(hint.ewma_ms(), 0.0);

  hint.Record(10.0);  // first sample initializes the EWMA outright
  EXPECT_DOUBLE_EQ(hint.ewma_ms(), 10.0);
  hint.Record(20.0);  // 0.2 * 20 + 0.8 * 10
  EXPECT_DOUBLE_EQ(hint.ewma_ms(), 12.0);

  EXPECT_EQ(hint.HintMs(1), 50u);    // ceil(12) is below the floor
  EXPECT_EQ(hint.HintMs(10), 120u);  // depth × EWMA past the floor
  // A deeper queue never yields a smaller hint.
  std::uint64_t prev = 0;
  for (std::size_t depth = 0; depth <= 64; ++depth) {
    std::uint64_t h = hint.HintMs(depth);
    EXPECT_GE(h, prev) << "depth " << depth;
    EXPECT_GE(h, 50u) << "depth " << depth;
    prev = h;
  }
}

std::shared_ptr<NetJob> MakeJob(std::uint64_t seq, std::string key) {
  auto job = std::make_shared<NetJob>();
  job->seq = seq;
  job->coalesce_key = std::move(key);
  return job;
}

TEST(SchedulerTest, WindowZeroDequeuesOneJobAtATime) {
  Scheduler scheduler(SchedulerOptions{8, 0});
  scheduler.Enqueue(MakeJob(1, "k"));
  scheduler.Enqueue(MakeJob(2, "k"));
  EXPECT_EQ(scheduler.queued(), 2u);
  std::vector<std::shared_ptr<NetJob>> group;
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0]->seq, 1u);
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0]->seq, 2u);
  EXPECT_EQ(scheduler.queued(), 0u);
  scheduler.Stop();
  EXPECT_FALSE(scheduler.DequeueGroup(&group));
}

TEST(SchedulerTest, GathersSameKeyUpToBatchMaxAndLeavesOtherKeys) {
  // batch_max 2 keeps every dequeue deterministic: each leader finds its
  // partner already queued and returns without waiting out the window.
  Scheduler scheduler(SchedulerOptions{2, 5000});
  scheduler.Enqueue(MakeJob(1, "k"));
  scheduler.Enqueue(MakeJob(2, "other"));
  scheduler.Enqueue(MakeJob(3, "k"));
  scheduler.Enqueue(MakeJob(4, "other"));
  std::vector<std::shared_ptr<NetJob>> group;
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 2u);  // 1 gathered 3 across the queued stranger
  EXPECT_EQ(group[0]->seq, 1u);
  EXPECT_EQ(group[1]->seq, 3u);
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0]->seq, 2u);
  EXPECT_EQ(group[1]->seq, 4u);
  scheduler.Stop();
}

TEST(SchedulerTest, TightDeadlineNeitherJoinsNorWaits) {
  Scheduler scheduler(SchedulerOptions{2, 1000});
  auto tight = MakeJob(2, "k");
  tight->token.SetDeadlineAfterMs(5);  // budget below the window
  scheduler.Enqueue(MakeJob(1, "k"));
  scheduler.Enqueue(std::move(tight));
  scheduler.Enqueue(MakeJob(3, "k"));
  std::vector<std::shared_ptr<NetJob>> group;
  // Leader 1 skips the tight job and completes its pair with 3.
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0]->seq, 1u);
  EXPECT_EQ(group[1]->seq, 3u);
  // The tight job leads next and bypasses: one job, no window wait.
  Clock::time_point start = Clock::now();
  ASSERT_TRUE(scheduler.DequeueGroup(&group));
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0]->seq, 2u);
  EXPECT_LT(ElapsedMs(start), 900.0);
  scheduler.Stop();
}

TEST(NetServerTest, MalformedDeadlineIsRejectedAsBadRequest) {
  ServerFixture fx{NetServerOptions{}};
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  auto with_deadline = [](int id, const char* deadline) {
    return "{\"id\":" + std::to_string(id) + ",\"query\":\"" +
           std::string(kQuery) + "\",\"xml\":[\"" + kSmallDoc +
           "\"],\"deadline_ms\":" + deadline + "}\n";
  };
  client.Send(with_deadline(1, "\"100\""));  // a string, not a number
  client.Send(with_deadline(2, "0"));        // zero = no budget at all
  client.Send(with_deadline(3, "-5"));       // negative
  client.Send(SimpleRequest(4));             // the session continues
  client.HalfClose();

  TestClient::WireResponse r;
  for (int id : {1, 2, 3}) {
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_NE(r.header.find("\"id\":" + std::to_string(id) + ",\"ok\":false"),
              std::string::npos);
    EXPECT_NE(r.header.find("\"status\":\"bad_request\""), std::string::npos)
        << r.header;
  }
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":4,\"ok\":true"), std::string::npos);
  EXPECT_EQ(r.payload, kSmallOut);

  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.rejected_bad_request, 3u);
  EXPECT_EQ(c.admitted, 1u);  // the rejects never reached the queue
}

// Parses the integer value of `key` out of a response header.
std::uint64_t HeaderCount(const std::string& header, const std::string& key) {
  std::size_t pos = header.find("\"" + key + "\":");
  if (pos == std::string::npos) return 0;
  pos += key.size() + 3;
  std::uint64_t n = 0;
  while (pos < header.size() && header[pos] >= '0' && header[pos] <= '9') {
    n = n * 10 + static_cast<std::uint64_t>(header[pos++] - '0');
  }
  return n;
}

TEST(NetServerTest, OverloadHintScalesWithObservedServiceTime) {
  NetServerOptions options;
  options.workers = 1;
  options.queue_limit = 2;
  options.retry_after_ms = 1;  // floor low enough that scaling is visible
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  // Seed the service-time EWMA with one completed ~80ms request.
  client.Send(StallRequest(1, 80));
  ASSERT_TRUE(WaitFor([&] {
    return fx.server().counters().completed_ok == 1;
  }));

  // Hold the worker, then fill the queue to depth 2.
  client.Send(StallRequest(2, 700));
  TestClient stats = fx.Connect();
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(WaitFor([&] {
    stats.Send("{\"cmd\":\"server_stats\"}\n");
    TestClient::WireResponse r;
    if (!stats.ReadResponse(&r)) return false;
    return r.header.find("\"admitted\":2") != std::string::npos &&
           r.header.find("\"queued\":0") != std::string::npos;
  }));
  client.Send(SimpleRequest(3));
  client.Send(SimpleRequest(4));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 4; }));

  client.Send(SimpleRequest(5));  // shed at depth 2
  client.HalfClose();
  TestClient::WireResponse r;
  for (int id = 1; id <= 4; ++id) ASSERT_TRUE(client.ReadResponse(&r));
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":5,\"ok\":false"), std::string::npos);
  EXPECT_NE(r.header.find("\"status\":\"overloaded\""), std::string::npos);
  // The observed service time was >= 80ms (the stall is a lower bound), so
  // at depth 2 the hint is >= 160ms — far from the 1ms static floor.
  EXPECT_GE(HeaderCount(r.header, "retry_after_ms"), 160u) << r.header;
}

TEST(NetServerTest, CoalescedRunSavesParsesWithExactCounts) {
  NetServerOptions options;
  options.workers = 1;
  options.batch_max = 4;
  options.batch_window_ms = 3000;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  // A stalled head request holds the single worker while the four
  // same-document requests queue behind it; the freed worker then gathers
  // all four into one shared pass (batch_max reached: no window wait).
  TestClient head = fx.Connect();
  ASSERT_TRUE(head.ok());
  head.Send(StallRequest(1, 200));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  for (int id = 2; id <= 5; ++id) client.Send(SimpleRequest(id));
  client.HalfClose();

  TestClient::WireResponse r;
  for (int id = 2; id <= 5; ++id) {
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_NE(r.header.find("\"id\":" + std::to_string(id) + ",\"ok\":true"),
              std::string::npos);
    EXPECT_EQ(HeaderCount(r.header, "coalesced"), 4u) << r.header;
    EXPECT_EQ(r.payload, kSmallOut);  // identical to an independent run
  }
  ASSERT_TRUE(WaitFor([&] {
    return fx.server().counters().completed_ok == 5;
  }));
  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.coalesced_runs, 1u);
  EXPECT_EQ(c.coalesced_requests, 4u);
  // One document, four members: three tokenizations avoided.
  EXPECT_EQ(c.parses_saved, 3u);
}

TEST(NetServerTest, TightDeadlineBypassesCoalescing) {
  NetServerOptions options;
  options.workers = 1;
  options.batch_max = 2;
  options.batch_window_ms = 3000;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  TestClient head = fx.Connect();
  ASSERT_TRUE(head.ok());
  head.Send(StallRequest(1, 300));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  // The tight request's whole budget (2500ms) is below the gather window,
  // so it can never afford to wait: it runs alone the moment the worker
  // frees, and still meets its deadline. The two unbounded requests behind
  // it coalesce.
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send("{\"id\":2,\"query\":\"" + std::string(kQuery) +
              "\",\"xml\":[\"" + kSmallDoc + "\"],\"deadline_ms\":2500}\n");
  client.Send(SimpleRequest(3));
  client.Send(SimpleRequest(4));
  client.HalfClose();

  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":2,\"ok\":true"), std::string::npos)
      << r.header;
  EXPECT_EQ(r.header.find("\"coalesced\":"), std::string::npos) << r.header;
  for (int id : {3, 4}) {
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_NE(r.header.find("\"id\":" + std::to_string(id) + ",\"ok\":true"),
              std::string::npos);
    EXPECT_EQ(HeaderCount(r.header, "coalesced"), 2u) << r.header;
    EXPECT_EQ(r.payload, kSmallOut);
  }
  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.coalesced_runs, 1u);
  EXPECT_EQ(c.coalesced_requests, 2u);
  EXPECT_EQ(c.parses_saved, 1u);
}

TEST(NetServerTest, CoalescedOutputsMatchIndependentRuns) {
  // The differential property over the wire: whatever the group size, a
  // coalesced run's responses are byte-identical to streaming each query
  // independently (Figure 3 corpus over one XMark document).
  auto doc = GenerateDatasetString(DatasetKind::kXmark, 20000, 7);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const auto& corpus = Figure3Queries();

  for (std::size_t k : {2u, 4u, 8u}) {
    SCOPED_TRACE("group size " + std::to_string(k));
    std::vector<std::string> texts, expected;
    for (std::size_t i = 0; i < k; ++i) {
      texts.push_back(corpus[i % corpus.size()].text);
      auto plan = CompiledPlan::Compile(texts.back());
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      StringSink sink;
      ASSERT_TRUE(plan.value()->StreamString(doc.value(), &sink).ok());
      expected.push_back(sink.str());
    }

    NetServerOptions options;
    options.workers = 1;
    options.batch_max = k;  // the gather completes without a window wait
    options.batch_window_ms = 3000;
    ServerFixture fx(std::move(options));
    TestClient client = fx.Connect();
    ASSERT_TRUE(client.ok());
    for (std::size_t i = 0; i < k; ++i) {
      std::string line = "{\"id\":" + std::to_string(i) + ",\"query\":";
      AppendJsonString(&line, texts[i]);
      line += ",\"xml\":[";
      AppendJsonString(&line, doc.value());
      line += "]}\n";
      client.Send(line);
    }
    client.HalfClose();

    for (std::size_t i = 0; i < k; ++i) {
      TestClient::WireResponse r;
      ASSERT_TRUE(client.ReadResponse(&r));
      EXPECT_NE(r.header.find("\"id\":" + std::to_string(i) + ",\"ok\":true"),
                std::string::npos)
          << r.header;
      EXPECT_EQ(HeaderCount(r.header, "coalesced"), k) << r.header;
      EXPECT_EQ(r.payload, expected[i]) << "query " << i;
    }
    NetServerCounters c = fx.server().counters();
    EXPECT_EQ(c.coalesced_runs, 1u);
    EXPECT_EQ(c.coalesced_requests, k);
    EXPECT_EQ(c.parses_saved, k - 1);  // one document, k members
  }
}

TEST(NetServerTest, CoalescedMemberDisconnectLeavesSurvivorsIntact) {
  NetServerOptions options;
  options.workers = 1;
  options.batch_max = 2;
  options.batch_window_ms = 3000;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  TestClient head = fx.Connect();
  ASSERT_TRUE(head.ok());
  head.Send(StallRequest(1, 200));
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 1; }));

  // Two distinct queries over the same document coalesce into one run with
  // two engine slots, each under its own member's token. Aborting B's
  // connection — before the pass or mid-stream, whichever the race gives —
  // must not perturb A's output by a single byte.
  const int kHits = 20000;
  TestClient a = fx.Connect(), b = fx.Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string doc = BigDoc(kHits);
  a.Send("{\"id\":2,\"query\":\"" + std::string(kQuery) + "\",\"xml\":[\"" +
         doc + "\"]}\n");
  b.Send("{\"id\":3,\"query\":\"<none>{$input//zzz}</none>\",\"xml\":[\"" +
         doc + "\"]}\n");
  ASSERT_TRUE(WaitFor([&] { return fx.server().counters().admitted == 3; }));
  // Let the head stall finish so the coalesced pass is starting (or has
  // started), then reset B.
  ASSERT_TRUE(WaitFor([&] {
    return fx.server().counters().completed_ok >= 1;
  }));
  b.AbortClose();

  a.HalfClose();
  TestClient::WireResponse r;
  ASSERT_TRUE(a.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":2,\"ok\":true"), std::string::npos)
      << r.header;
  std::string expected = "<out>";
  for (int i = 0; i < kHits; ++i) expected += "<a>payload-payload</a>";
  expected += "</out>";
  EXPECT_EQ(r.payload, expected);

  // Every admitted request resolves to a counted outcome, and the server
  // keeps serving.
  ASSERT_TRUE(WaitFor([&] {
    NetServerCounters c = fx.server().counters();
    return c.completed_ok + c.failed + c.cancelled_runs +
               c.deadline_exceeded_runs ==
           c.admitted;
  }));
  TestClient fresh = fx.Connect();
  ASSERT_TRUE(fresh.ok());
  fresh.Send(SimpleRequest(9));
  fresh.HalfClose();
  ASSERT_TRUE(fresh.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":9,\"ok\":true"), std::string::npos);
}

TEST(NetServerTest, CounterSnapshotsKeepTheAdmissionInvariant) {
  // Hammer the snapshot path from a second thread while requests flow: in
  // every observed snapshot, admitted covers all counted outcomes — the
  // ordered-load guarantee (a torn snapshot could show an outcome whose
  // admission it missed).
  NetServerOptions options;
  options.workers = 2;
  options.allow_fault_injection = true;
  ServerFixture fx(std::move(options));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      NetServerCounters c = fx.server().counters();
      if (c.completed_ok + c.failed + c.cancelled_runs +
              c.deadline_exceeded_runs >
          c.admitted) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  constexpr int kRequests = 40;
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  for (int id = 1; id <= kRequests; ++id) {
    client.Send(id % 5 == 0 ? StallRequest(id, 2) : SimpleRequest(id));
  }
  client.HalfClose();
  for (int id = 1; id <= kRequests; ++id) {
    TestClient::WireResponse r;
    ASSERT_TRUE(client.ReadResponse(&r));
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  NetServerCounters c = fx.server().counters();
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(kRequests));
}

TEST(NetServerTest, SocketFaultHookDropsTheConnectionAbruptly) {
  NetServerOptions options;
  options.fault_abort_conn_after_responses = 2;
  ServerFixture fx(std::move(options));
  TestClient client = fx.Connect();
  ASSERT_TRUE(client.ok());
  client.Send(SimpleRequest(1));
  client.Send(SimpleRequest(2));
  // The first response is delivered; the second trips the hook, which
  // drops the connection abruptly — before flushing — so it never
  // arrives, and the read side terminates rather than hanging.
  TestClient::WireResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":1,\"ok\":true"), std::string::npos);
  EXPECT_EQ(client.ReadAll().find("\"id\":2,"), std::string::npos);

  // The blast radius is that one connection: a fresh one that stays under
  // the response threshold is served normally.
  TestClient fresh = fx.Connect();
  ASSERT_TRUE(fresh.ok());
  fresh.Send(SimpleRequest(3));
  fresh.HalfClose();
  ASSERT_TRUE(fresh.ReadResponse(&r));
  EXPECT_NE(r.header.find("\"id\":3,\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace xqmft
