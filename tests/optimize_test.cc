// Tests for the Section 4.1 optimization passes: the paper's own examples,
// semantics preservation on concrete transducers, and pass interaction via
// the fixpoint driver.
#include <gtest/gtest.h>

#include <string>

#include "mft/interp.h"
#include "mft/mft.h"
#include "mft/optimize.h"
#include "util/rng.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) ADD_FAILURE() << "ParseMft failed: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

int ParamsOf(const Mft& m, const std::string& name) {
  for (StateId q = 0; q < m.num_states(); ++q) {
    if (m.state_name(q) == name) return m.num_params(q);
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Unused parameter reduction
// ---------------------------------------------------------------------------

// The Section 4.1 example. Note: the paper's prose claims y1 of q and y2 of
// q' are both unused, but its own fixpoint algorithm (which we implement)
// keeps (q,1): y1 of q flows through q' (rule 1, argument 1) and back into
// the *output* position y2 of q (rule 4), so it can reach the output and a
// sound analysis must keep it. Only (q',2) has no path to any output.
TEST(UnusedParamsTest, PaperExample) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, eps, eps)\n"
      "q(s(x1)x2, y1, y2) -> d(qp(x2, y1, y2))\n"
      "q(%t(x1)x2, y1, y2) -> %t(qp(x2, d(y2), s(y2)))\n"
      "q(eps, y1, y2) -> s(y2)\n"
      "qp(%t(x1)x2, y1, y2) -> q(x1, eps, y1)\n"
      "qp(eps, y1, y2) -> eps\n");
  int removed = 0;
  EXPECT_TRUE(RemoveUnusedParameters(&m, &removed));
  EXPECT_EQ(removed, 1);  // exactly (q',2)
  EXPECT_EQ(ParamsOf(m, "q"), 2);
  EXPECT_EQ(ParamsOf(m, "qp"), 1);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(UnusedParamsTest, DropsNeverOutputParameter) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, junk)\n"
      "q(a(x1)x2, y1) -> hit q(x2, y1)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  int removed = 0;
  EXPECT_TRUE(RemoveUnusedParameters(&m, &removed));
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(ParamsOf(m, "q"), 0);
  EXPECT_TRUE(m.IsForestTransducer());
  // Semantics preserved.
  Forest f = std::move(ParseTerm("a b a").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()), "hit hit");
}

TEST(UnusedParamsTest, KeepsParameterUsedThroughLabelChild) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, v)\n"
      "q(%t(x1)x2, y1) -> wrap(y1)\n"
      "q(eps, y1) -> eps\n");
  EXPECT_FALSE(RemoveUnusedParameters(&m));
  EXPECT_EQ(ParamsOf(m, "q"), 1);
}

TEST(UnusedParamsTest, TransitiveUseThroughCallChain) {
  // y1 of f is only used because f passes it to g, which outputs it.
  Mft m = MustParseMft(
      "q0(%) -> f(x0, v)\n"
      "f(%t(x1)x2, y1) -> g(x2, y1)\n"
      "f(eps, y1) -> eps\n"
      "g(%t(x1)x2, y1) -> y1\n"
      "g(eps, y1) -> y1\n");
  EXPECT_FALSE(RemoveUnusedParameters(&m));
  EXPECT_EQ(ParamsOf(m, "f"), 1);
  EXPECT_EQ(ParamsOf(m, "g"), 1);
}

TEST(UnusedParamsTest, NoChangeOnParameterFree) {
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> %t(q(x1)) q(x2)\nq(eps) -> eps\n");
  EXPECT_FALSE(RemoveUnusedParameters(&m));
}

// ---------------------------------------------------------------------------
// Constant parameter reduction
// ---------------------------------------------------------------------------

// The Section 4.1 example (with the paper's obvious `x2`-as-argument typo in
// the fourth rule read as y1): y1 of q is always eps or passed through, so it
// is replaced by eps; the epsilon rule's RHS becomes eps.
TEST(ConstantParamsTest, PaperExample) {
  Mft m = MustParseMft(
      "q0(%) -> qp(x0, eps)\n"
      "q(s(x1)x2, y1, y2) -> q(x1, eps, y2) d(qp(x2, y2))\n"
      "q(%t(x1)x2, y1, y2) -> q(x1, y1, y2) %t(qp(x2, d(y2)))\n"
      "q(eps, y1, y2) -> y1\n"
      "qp(%t(x1)x2, y1) -> d(q(x1, eps, y1))\n"
      "qp(eps, y1) -> eps\n");
  int removed = 0;
  EXPECT_TRUE(RemoveConstantParameters(&m, &removed));
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(ParamsOf(m, "q"), 1);
  // The q epsilon rule became `-> eps` (y1 replaced by the constant).
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (m.state_name(s) == "q") {
      EXPECT_TRUE(m.rules(s).epsilon_rule->empty());
    }
  }
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ConstantParamsTest, NonEmptyConstantIsSubstituted) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, mark(flag))\n"
      "q(a(x1)x2, y1) -> y1 q(x2, y1)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  int removed = 0;
  EXPECT_TRUE(RemoveConstantParameters(&m, &removed));
  EXPECT_EQ(removed, 1);
  EXPECT_EQ(ParamsOf(m, "q"), 0);
  Forest f = std::move(ParseTerm("a a").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()),
            "mark(flag) mark(flag)");
}

TEST(ConstantParamsTest, DifferentConstantsBlockRemoval) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, u) q(x0, v)\n"
      "q(%t(x1)x2, y1) -> y1 q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  EXPECT_FALSE(RemoveConstantParameters(&m));
}

TEST(ConstantParamsTest, NonSelfPassThroughBlocksRemoval) {
  // p passes its own y1 into q's slot; that is not a *self* pass-through for
  // q, so q's parameter is not constant. p's own parameter receives two
  // distinct constants, so it is not constant either.
  Mft m = MustParseMft(
      "q0(%) -> p(x0, u) p(x0, w)\n"
      "p(%t(x1)x2, y1) -> q(x2, y1)\n"
      "p(eps, y1) -> eps\n"
      "q(%t(x1)x2, y1) -> y1\n"
      "q(eps, y1) -> y1\n");
  EXPECT_FALSE(RemoveConstantParameters(&m));
}

TEST(ConstantParamsTest, IndirectConstantFlowsThroughOnePass) {
  // p's parameter is the constant u; q's parameter only receives p's y1.
  // One invocation removes p's parameter (substituting u); after that q's
  // call site holds the ground constant u, so the *next* invocation removes
  // q's too — the fixpoint driver's job.
  Mft m = MustParseMft(
      "q0(%) -> p(x0, u)\n"
      "p(%t(x1)x2, y1) -> q(x2, y1)\n"
      "p(eps, y1) -> eps\n"
      "q(%t(x1)x2, y1) -> y1\n"
      "q(eps, y1) -> y1\n");
  EXPECT_TRUE(RemoveConstantParameters(&m));
  EXPECT_EQ(ParamsOf(m, "p"), 0);
  EXPECT_EQ(ParamsOf(m, "q"), 1);
  EXPECT_TRUE(RemoveConstantParameters(&m));
  EXPECT_EQ(ParamsOf(m, "q"), 0);
  EXPECT_TRUE(m.Validate().ok());
}

// ---------------------------------------------------------------------------
// Stay-move removal
// ---------------------------------------------------------------------------

// Section 4.1: "if we have a rule q(%, y1, y2) -> q'(x0) y1, then all
// occurrences of q(xi, e1, e2) can be replaced by q'(xi) e1".
TEST(StayMoveTest, PaperExample) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, a, b)\n"
      "q(%, y1, y2) -> qp(x0) y1\n"
      "qp(c(x1)x2) -> hit qp(x2)\n"
      "qp(%t(x1)x2) -> qp(x2)\n"
      "qp(eps) -> eps\n");
  int inlined = 0;
  EXPECT_TRUE(InlineStayStates(&m, &inlined));
  EXPECT_EQ(inlined, 1);
  // q0's rule is now qp(x0) a.
  Forest f = std::move(ParseTerm("c c").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()), "hit hit a");
}

TEST(StayMoveTest, InliningRewritesInputVariable) {
  // The stay state is called on x1/x2; its x0 calls must follow.
  Mft m = MustParseMft(
      "q0(a(x1)x2) -> inner(q(x1)) q0(x2)\n"
      "q0(%t(x1)x2) -> q0(x2)\n"
      "q0(eps) -> eps\n"
      "q(%) -> count(x0)\n"
      "count(%t(x1)x2) -> n count(x2)\n"
      "count(eps) -> eps\n");
  EXPECT_TRUE(InlineStayStates(&m));
  Forest f = std::move(ParseTerm("a(b b b)").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()),
            "inner(n n n)");
}

TEST(StayMoveTest, SelfRecursiveStayStateIsSkipped) {
  // q(%,..) -> q(x0,..) is non-terminating; the pass must not inline it.
  Mft m = MustParseMft(
      "q0(%) -> done\n"
      "q(%, y1) -> q(x0, y1)\n");
  EXPECT_FALSE(InlineStayStates(&m));
}

TEST(StayMoveTest, SymbolRuleBlocksInlining) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0)\n"
      "q(a(x1)x2) -> hit\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n");
  EXPECT_FALSE(InlineStayStates(&m));
}

// ---------------------------------------------------------------------------
// Unreachable state removal
// ---------------------------------------------------------------------------

TEST(UnreachableTest, DropsDeadStates) {
  Mft m = MustParseMft(
      "q0(%) -> live(x0)\n"
      "live(%t(x1)x2) -> %t(live(x1)) live(x2)\n"
      "live(eps) -> eps\n"
      "dead1(%t(x1)x2, y1) -> dead2(x1, y1)\n"
      "dead1(eps, y1) -> y1\n"
      "dead2(%t(x1)x2, y1) -> dead1(x2, y1)\n"
      "dead2(eps, y1) -> eps\n");
  int removed = 0;
  EXPECT_TRUE(RemoveUnreachableStates(&m, &removed));
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_TRUE(m.Validate().ok());
  // Behavior unchanged.
  Forest f = std::move(ParseTerm("a(b)").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()), "a(b)");
}

TEST(UnreachableTest, KeepsEverythingWhenAllReachable) {
  Mft m = MustParseMft(
      "q0(%) -> q1(x0)\n"
      "q1(%t(x1)x2) -> q1(x1) q1(x2)\n"
      "q1(eps) -> eps\n");
  EXPECT_FALSE(RemoveUnreachableStates(&m));
}

// ---------------------------------------------------------------------------
// Fixpoint driver
// ---------------------------------------------------------------------------

// The interaction the paper describes: a parameter becomes removable only
// after stay-move removal; states become unreachable only after inlining.
TEST(OptimizeMftTest, PassesInteractToFixpoint) {
  Mft m = MustParseMft(
      // q0 feeds the whole input into `hold` as a parameter through a stay
      // state; after inlining and unused-parameter removal the transducer
      // needs no parameters at all.
      "q0(%) -> stay(x0, copy(x0))\n"
      "stay(%, y1) -> scan(x0, y1)\n"
      "scan(a(x1)x2, y1) -> hit scan(x2, y1)\n"
      "scan(%t(x1)x2, y1) -> scan(x2, y1)\n"
      "scan(eps, y1) -> eps\n"
      "copy(%t(x1)x2) -> %t(copy(x1)) copy(x2)\n"
      "copy(eps) -> eps\n");
  OptimizeReport report;
  Mft opt = OptimizeMft(m, {}, &report);
  EXPECT_TRUE(opt.Validate().ok());
  EXPECT_TRUE(opt.IsForestTransducer()) << opt.ToString();
  // copy/stay are gone.
  EXPECT_LT(opt.num_states(), m.num_states());
  EXPECT_GT(report.iterations, 1);
  // Semantics preserved.
  Forest f = std::move(ParseTerm("a b a").ValueOrDie());
  EXPECT_EQ(ForestToTerm(std::move(RunMft(opt, f)).ValueOrDie()), "hit hit");
  EXPECT_EQ(ForestToTerm(std::move(RunMft(m, f)).ValueOrDie()), "hit hit");
}

TEST(OptimizeMftTest, ReportCountsArePopulated) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, junk)\n"
      "q(a(x1)x2, y1) -> hit q(x2, y1)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n"
      "dead(%t(x1)x2) -> dead(x2)\n"
      "dead(eps) -> eps\n");
  OptimizeReport report;
  Mft opt = OptimizeMft(m, {}, &report);
  EXPECT_EQ(report.unused_params_removed, 1);
  EXPECT_EQ(report.states_removed, 1);
  EXPECT_EQ(report.before.states, 3u);
  EXPECT_EQ(report.after.states, 2u);
  EXPECT_LT(report.after.size, report.before.size);
}

TEST(OptimizeMftTest, OptionsDisablePasses) {
  Mft m = MustParseMft(
      "q0(%) -> q(x0, junk)\n"
      "q(%t(x1)x2, y1) -> q(x2, y1)\n"
      "q(eps, y1) -> eps\n");
  OptimizeOptions opts;
  opts.unused_parameters = false;
  opts.constant_parameters = false;
  Mft opt = OptimizeMft(m, opts);
  EXPECT_EQ(ParamsOf(opt, "q"), 1);  // parameter survives
}

// Semantics preservation sweep: optimize Mperson and compare outputs on a
// set of random-ish person documents.
class OptimizePreservesSemantics : public ::testing::TestWithParam<int> {};

TEST_P(OptimizePreservesSemantics, MpersonDocuments) {
  const char* rules = R"(
q0(%) -> out(q1(x0))
q1(person(x1)x2) -> q2(x1, q4(x1)) q1(x2)
q1(%t(x1)x2) -> q1(x1) q1(x2)
q1(eps) -> eps
q2(p_id(x1)x2, y1) -> q3(x1, y1, q2(x2, y1))
q2(%t(x1)x2, y1) -> q2(x2, y1)
q2(eps, y1) -> eps
q3("person0"(x1)x2, y1, y2) -> y1
q3(%t(x1)x2, y1, y2) -> q3(x2, y1, y2)
q3(eps, y1, y2) -> y2
q4(name(x1)x2) -> q5(x1) q4(x2)
q4(%t(x1)x2) -> q4(x2)
q4(eps) -> eps
q5(%ttext(x1)x2) -> %t(eps) q5(x2)
q5(%t(x1)x2) -> q5(x2)
q5(eps) -> eps
)";
  Mft m = std::move(ParseMft(rules).ValueOrDie());
  Mft opt = OptimizeMft(m);
  Rng rng(GetParam());
  // Random person forest.
  Forest doc;
  int persons = static_cast<int>(rng.Below(4)) + 1;
  for (int i = 0; i < persons; ++i) {
    Forest kids;
    int fields = static_cast<int>(rng.Below(5));
    for (int j = 0; j < fields; ++j) {
      switch (rng.Below(3)) {
        case 0:
          kids.push_back(Tree::Element(
              "p_id", {Tree::Text(rng.Chance(1, 2) ? "person0" : "personX")}));
          break;
        case 1:
          kids.push_back(Tree::Element(
              "name", {Tree::Text("n" + std::to_string(rng.Below(10)))}));
          break;
        default:
          kids.push_back(Tree::Element("junk"));
      }
    }
    doc.push_back(Tree::Element("person", kids));
  }
  Forest a = std::move(RunMft(m, doc)).ValueOrDie();
  Forest b = std::move(RunMft(opt, doc)).ValueOrDie();
  EXPECT_EQ(a, b) << "input: " << ForestToTerm(doc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizePreservesSemantics,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace xqmft
