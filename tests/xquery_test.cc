// Tests for the MinXQuery parser, validator, and reference evaluator,
// including the paper's Section 2.1 worked example and the whole Figure 3
// benchmark corpus.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_common/queries.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

std::unique_ptr<QueryExpr> MustParse(const std::string& text) {
  Result<std::unique_ptr<QueryExpr>> r = ParseQuery(text);
  if (!r.ok()) {
    ADD_FAILURE() << "ParseQuery failed: " << r.status().ToString()
                  << "\nquery: " << text;
    return nullptr;
  }
  return std::move(r).ValueOrDie();
}

Forest MustParseXml(const std::string& xml) {
  return std::move(ParseXmlForest(xml).ValueOrDie());
}

std::string EvalToTerm(const QueryExpr& q, const Forest& input) {
  Result<Forest> out = EvaluateQuery(q, input);
  if (!out.ok()) {
    ADD_FAILURE() << "EvaluateQuery failed: " << out.status().ToString();
    return "";
  }
  return ForestToTerm(out.value());
}

TEST(XQueryParserTest, ElementWithStringAndClause) {
  auto q = MustParse("<out>hello{$input}</out>");
  ASSERT_TRUE(q);
  EXPECT_EQ(q->kind, QueryKind::kElement);
  EXPECT_EQ(q->name, "out");
  ASSERT_EQ(q->children.size(), 2u);
  EXPECT_EQ(q->children[0]->kind, QueryKind::kString);
  EXPECT_EQ(q->children[0]->str, "hello");
  EXPECT_EQ(q->children[1]->kind, QueryKind::kPath);
}

TEST(XQueryParserTest, ForLetSequence) {
  auto q = MustParse(kSection21Query);
  ASSERT_TRUE(q);
  EXPECT_EQ(q->kind, QueryKind::kFor);
  EXPECT_EQ(q->name, "v1");
  EXPECT_EQ(q->body->kind, QueryKind::kFor);
  EXPECT_EQ(q->body->body->kind, QueryKind::kLet);
  const QueryExpr& seq = *q->body->body->body->body;
  EXPECT_EQ(seq.kind, QueryKind::kSequence);
  EXPECT_EQ(seq.children.size(), 4u);
  EXPECT_TRUE(ValidateQuery(*q).ok());
}

TEST(XQueryParserTest, AllFigure3QueriesParseAndValidate) {
  for (const BenchQuery& bq : Figure3Queries()) {
    auto r = ParseQuery(bq.text);
    ASSERT_TRUE(r.ok()) << bq.id << ": " << r.status().ToString();
    EXPECT_TRUE(ValidateQuery(*r.value()).ok()) << bq.id;
    EXPECT_GT(QuerySize(*r.value()), 1u);
  }
}

TEST(XQueryParserTest, PersonQueryParses) {
  auto q = MustParse(kPersonQuery);
  ASSERT_TRUE(q);
  EXPECT_TRUE(ValidateQuery(*q).ok());
}

TEST(XQueryParserTest, NestedElementsInBody) {
  auto q = MustParse(
      "<a><b>x</b><c>{for $v in $input/p return <d>{$v}</d>}</c></a>");
  ASSERT_TRUE(q);
  EXPECT_TRUE(ValidateQuery(*q).ok());
}

TEST(XQueryParserTest, ParseErrors) {
  EXPECT_FALSE(ParseQuery("<a>").ok());                       // unterminated
  EXPECT_FALSE(ParseQuery("<a></b>").ok());                   // mismatch
  EXPECT_FALSE(ParseQuery("for $v in return $v").ok());       // missing path
  EXPECT_FALSE(ParseQuery("for $v in $input/a $v").ok());     // no return
  EXPECT_FALSE(ParseQuery("let $v = $input return $v").ok()); // not :=
  EXPECT_FALSE(ParseQuery("($input)").ok());                  // 1-sequence
  EXPECT_FALSE(ParseQuery("<a>{$input}</a> junk").ok());      // trailing
}

TEST(XQueryValidateTest, PathMustUseNearestForVariable) {
  // Inner path uses the *outer* for variable: a join, rejected.
  auto q = MustParse(
      "for $x in $input/a return for $y in $x/b return <r>{$x/c}</r>");
  ASSERT_TRUE(q);
  Status st = ValidateQuery(*q);
  EXPECT_FALSE(st.ok());
}

TEST(XQueryValidateTest, InputPathInsideForRejected) {
  auto q = MustParse("for $x in $input/a return <r>{$input/b}</r>");
  ASSERT_TRUE(q);
  EXPECT_FALSE(ValidateQuery(*q).ok());
}

TEST(XQueryValidateTest, BareOuterVariableAllowed) {
  // Bare references to outer/let variables are output variables: fine.
  auto q = MustParse(
      "for $x in $input/a return for $y in $x/b return ($x,$y)");
  ASSERT_TRUE(q);
  EXPECT_TRUE(ValidateQuery(*q).ok());
}

TEST(XQueryValidateTest, UnboundVariableRejected) {
  auto q = MustParse("<r>{$nope}</r>");
  ASSERT_TRUE(q);
  EXPECT_FALSE(ValidateQuery(*q).ok());
}

TEST(XQueryValidateTest, LetVariableWithStepsRejected) {
  auto q = MustParse(
      "let $v := $input/a return <r>{$v/b}</r>");
  ASSERT_TRUE(q);
  EXPECT_FALSE(ValidateQuery(*q).ok());
}

TEST(XQueryToStringTest, RoundTripsThroughParser) {
  for (const BenchQuery& bq : Figure3Queries()) {
    auto q1 = MustParse(bq.text);
    std::string s1 = QueryToString(*q1);
    auto q2 = MustParse(s1);
    EXPECT_EQ(QueryToString(*q2), s1) << bq.id;
  }
}

// ---------------------------------------------------------------------------
// Reference evaluator
// ---------------------------------------------------------------------------

TEST(XQueryEvalTest, ElementAndStringConstruction) {
  auto q = MustParse("<out><hi>there</hi></out>");
  EXPECT_EQ(EvalToTerm(*q, {}), "out(hi(\"there\"))");
}

TEST(XQueryEvalTest, ForIteratesInDocumentOrder) {
  auto q = MustParse("for $v in $input/r/a return <m>{$v/text()}</m>");
  Forest doc = MustParseXml("<r><a>1</a><b/><a>2</a></r>");
  EXPECT_EQ(EvalToTerm(*q, doc), "m(\"1\") m(\"2\")");
}

TEST(XQueryEvalTest, LetBindsForest) {
  auto q = MustParse(
      "for $p in $input/r return let $v := $p/a/text() return <out>{$v}{$v}</out>");
  Forest doc = MustParseXml("<r><a>x</a><a>y</a></r>");
  EXPECT_EQ(EvalToTerm(*q, doc), "out(\"x\" \"y\" \"x\" \"y\")");
}

TEST(XQueryEvalTest, BareForVariableCopiesSubtree) {
  auto q = MustParse("for $v in $input/r/a return <w>{$v}</w>");
  Forest doc = MustParseXml("<r><a><b>t</b></a></r>");
  EXPECT_EQ(EvalToTerm(*q, doc), "w(a(b(\"t\")))");
}

TEST(XQueryEvalTest, BareInputCopiesDocument) {
  auto q = MustParse("<double><r1>{$input/*}</r1>{$input/*}</double>");
  Forest doc = MustParseXml("<a><b/></a>");
  EXPECT_EQ(EvalToTerm(*q, doc), "double(r1(a(b)) a(b))");
}

// Section 2.1's worked example, on the document from the paper:
// <doc><a><b><c><c/></c><d/><d/></b><b><d/></b></a></doc>.
// First b yields (a1, b1, c1 c2, d1 d2); second b yields (a1, b2, d3).
TEST(XQueryEvalTest, PaperSection21Example) {
  auto q = MustParse(kSection21Query);
  ASSERT_TRUE(q);
  Forest doc = MustParseXml(
      "<doc><a><b><c><c/></c><d/><d/></b><b><d/></b></a></doc>");
  Result<Forest> out = EvaluateQuery(*q, doc);
  ASSERT_TRUE(out.ok());
  // a1 subtree printed in full; abbreviate with sizes instead.
  const Forest& f = out.value();
  // Sequence 1: a1 b1 c1 c2 d1 d2 ; sequence 2: a1 b2 d3  => 9 trees total.
  ASSERT_EQ(f.size(), 9u);
  EXPECT_EQ(f[0].label, "a");  // a1
  EXPECT_EQ(f[1].label, "b");  // b1
  EXPECT_EQ(ForestToTerm({f[2]}), "c(c)");
  EXPECT_EQ(ForestToTerm({f[3]}), "c");
  EXPECT_EQ(f[4].label, "d");
  EXPECT_EQ(f[5].label, "d");
  EXPECT_EQ(f[6].label, "a");              // a1 again (second sequence)
  EXPECT_EQ(ForestToTerm({f[7]}), "b(d)"); // b2
  EXPECT_EQ(f[8].label, "d");              // d3
}

// Section 2.2's Pperson on both worked inputs.
TEST(XQueryEvalTest, PaperPersonQuery) {
  auto q = MustParse(kPersonQuery);
  ASSERT_TRUE(q);
  Forest hit = MustParseXml(
      "<person><p_id><a/>person0</p_id><name>Jim</name><c/>"
      "<name>Li</name></person>");
  EXPECT_EQ(EvalToTerm(*q, hit), "out(\"Jim\" \"Li\")");
  Forest miss_then_hit = MustParseXml(
      "<person><p_id><a/>perso7</p_id><name>Jim</name><c/>"
      "<p_id>person0</p_id></person>");
  EXPECT_EQ(EvalToTerm(*q, miss_then_hit), "out(\"Jim\")");
}

TEST(XQueryEvalTest, Q01OnMiniXMark) {
  const BenchQuery& bq = QueryById("q01");
  auto q = MustParse(bq.text);
  Forest doc = MustParseXml(
      "<site><people>"
      "<person><person_id>person0</person_id><name>Alice</name></person>"
      "<person><person_id>person1</person_id><name>Bob</name></person>"
      "</people></site>");
  EXPECT_EQ(EvalToTerm(*q, doc), "query01(\"Alice\")");
}

TEST(XQueryEvalTest, Q02NestedLoops) {
  const BenchQuery& bq = QueryById("q02");
  auto q = MustParse(bq.text);
  Forest doc = MustParseXml(
      "<site><open_auctions>"
      "<open_auction><bidder><increase>1.0</increase></bidder>"
      "<bidder><increase>2.5</increase></bidder></open_auction>"
      "<open_auction/>"
      "</open_auctions></site>");
  EXPECT_EQ(EvalToTerm(*q, doc),
            "query02(increase(bid(\"1.0\") bid(\"2.5\")) increase)");
}

TEST(XQueryEvalTest, Q17EmptyPredicate) {
  const BenchQuery& bq = QueryById("q17");
  auto q = MustParse(bq.text);
  Forest doc = MustParseXml(
      "<site><people>"
      "<person><name>A</name><homepage>http://a</homepage></person>"
      "<person><name>B</name></person>"
      "<person><name>C</name><homepage/></person>"
      "</people></site>");
  // B has no homepage; C's homepage has no text → empty() is true for both.
  EXPECT_EQ(EvalToTerm(*q, doc),
            "query17(person(name(\"B\")) person(name(\"C\")))");
}

TEST(XQueryEvalTest, DeepdupDuplicatesVariable) {
  const BenchQuery& bq = QueryById("deepdup");
  auto q = MustParse(bq.text);
  Forest doc = MustParseXml("<r><x>1</x></r>");
  EXPECT_EQ(EvalToTerm(*q, doc),
            "deepdup(r(r1(r2(x(\"1\")) x(\"1\"))))");
}

TEST(XQueryEvalTest, FourstarSelection) {
  const BenchQuery& bq = QueryById("fourstar");
  auto q = MustParse(bq.text);
  Forest doc = MustParseXml("<a><b><c><d><e/></d></c></b></a>");
  EXPECT_EQ(EvalToTerm(*q, doc), "fourstar(d(e) e)");
}

}  // namespace
}  // namespace xqmft
