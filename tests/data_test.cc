// Tests for the Table 1 dataset generators: determinism, well-formedness,
// structural profiles (depth per Table 1), and query-target coverage (every
// Figure 3 query finds work in the XMark data).
#include <gtest/gtest.h>

#include <string>

#include "bench_common/queries.h"
#include "data/generators.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

constexpr std::size_t kSmall = 64 * 1024;

std::string Generate(DatasetKind kind, std::size_t bytes = kSmall) {
  return std::move(GenerateDatasetString(kind, bytes, 7).ValueOrDie());
}

TEST(GeneratorsTest, Deterministic) {
  for (DatasetKind kind : {DatasetKind::kXmark, DatasetKind::kTreebank,
                           DatasetKind::kMedline, DatasetKind::kProtein}) {
    std::string a = Generate(kind);
    std::string b = Generate(kind);
    EXPECT_EQ(a, b) << DatasetName(kind);
    std::string c =
        std::move(GenerateDatasetString(kind, kSmall, 8).ValueOrDie());
    EXPECT_NE(a, c) << DatasetName(kind) << ": seed must matter";
  }
}

TEST(GeneratorsTest, SizesNearTarget) {
  for (DatasetKind kind : {DatasetKind::kXmark, DatasetKind::kTreebank,
                           DatasetKind::kMedline, DatasetKind::kProtein}) {
    for (std::size_t target : {std::size_t{64} * 1024, std::size_t{512} * 1024}) {
      std::string xml = Generate(kind, target);
      EXPECT_GT(xml.size(), target * 9 / 10) << DatasetName(kind);
      EXPECT_LT(xml.size(), target * 3 / 2) << DatasetName(kind);
    }
  }
}

TEST(GeneratorsTest, WellFormed) {
  for (DatasetKind kind : {DatasetKind::kXmark, DatasetKind::kTreebank,
                           DatasetKind::kMedline, DatasetKind::kProtein}) {
    std::string xml = Generate(kind);
    Result<Forest> f = ParseXmlForest(xml);
    ASSERT_TRUE(f.ok()) << DatasetName(kind) << ": " << f.status().ToString();
    EXPECT_EQ(f.value().size(), 1u) << DatasetName(kind);
  }
}

TEST(GeneratorsTest, DepthProfilesMatchTable1) {
  // Table 1: XMark depth 13, TreeBank 37, Medline 8, Protein 8.
  Forest xmark = std::move(ParseXmlForest(Generate(DatasetKind::kXmark)).ValueOrDie());
  std::size_t d = ForestDepth(xmark);
  EXPECT_GE(d, 11u);
  EXPECT_LE(d, 15u);

  Forest tb = std::move(
      ParseXmlForest(Generate(DatasetKind::kTreebank)).ValueOrDie());
  d = ForestDepth(tb);
  EXPECT_GE(d, 30u);
  EXPECT_LE(d, 45u);

  Forest ml = std::move(
      ParseXmlForest(Generate(DatasetKind::kMedline)).ValueOrDie());
  d = ForestDepth(ml);
  EXPECT_GE(d, 6u);
  EXPECT_LE(d, 10u);

  Forest pr = std::move(
      ParseXmlForest(Generate(DatasetKind::kProtein)).ValueOrDie());
  d = ForestDepth(pr);
  EXPECT_GE(d, 6u);
  EXPECT_LE(d, 10u);
}

TEST(GeneratorsTest, XmarkCoversEveryBenchmarkQuery) {
  // Each Figure 3 query must produce non-trivial output on XMark data of
  // modest size — otherwise the Figure 4 benches would measure nothing.
  std::string xml = Generate(DatasetKind::kXmark, 512 * 1024);
  Forest doc = std::move(ParseXmlForest(xml).ValueOrDie());
  for (const BenchQuery& bq : Figure3Queries()) {
    auto q = std::move(ParseQuery(bq.text).ValueOrDie());
    Result<Forest> out = EvaluateQuery(*q, doc);
    ASSERT_TRUE(out.ok()) << bq.id;
    // The root element plus some content (Q4's adjacency pattern is rare,
    // so require hits only for the others).
    std::size_t content = ForestSize(out.value()) - 1;
    if (std::string(bq.id) != "q04") {
      EXPECT_GT(content, 0u) << bq.id << " found no matches";
    }
  }
}

TEST(GeneratorsTest, Q4FindsHitsAtLargerSizes) {
  // The personXX/personYY adjacency is seeded at ~1/20 per bidder; a 2 MB
  // document contains hits.
  std::string xml = Generate(DatasetKind::kXmark, 2 * 1024 * 1024);
  Forest doc = std::move(ParseXmlForest(xml).ValueOrDie());
  auto q = std::move(ParseQuery(QueryById("q04").text).ValueOrDie());
  Forest out = std::move(EvaluateQuery(*q, doc)).ValueOrDie();
  EXPECT_GT(ForestSize(out), 1u);
}

TEST(GeneratorsTest, ScanStatsMatchesParse) {
  Result<std::string> path = EnsureDataset(DatasetKind::kXmark, kSmall, 7);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  Result<DatasetStats> stats = ScanDatasetFile(path.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().bytes, kSmall * 9 / 10);
  EXPECT_GT(stats.value().elements, 100u);
  EXPECT_GE(stats.value().depth, 11u);

  // The cache returns the same file on the second call.
  Result<std::string> path2 = EnsureDataset(DatasetKind::kXmark, kSmall, 7);
  ASSERT_TRUE(path2.ok());
  EXPECT_EQ(path.value(), path2.value());
}

}  // namespace
}  // namespace xqmft
