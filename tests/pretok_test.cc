// Tests for the pre-tokenized binary event format: event-stream round trips,
// symbol remapping into a consumer table, corruption handling, and the
// differential guarantee the streaming engine relies on — byte-identical
// output whether it consumes text XML or a pretok cache, across the Figure 3
// query corpus.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "event_trace_util.h"
#include "stream/engine.h"
#include "util/rng.h"
#include "xml/events.h"
#include "xml/forest.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

// TracedEvent / Trace() come from event_trace_util.h, shared with the SAX
// conformance suite so both differential tests compare the same trace.
std::vector<TracedEvent> TraceSource(EventSource* src) {
  Result<std::vector<TracedEvent>> out = Trace(src);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? std::move(out.value()) : std::vector<TracedEvent>{};
}

std::string Tokenize(const std::string& xml, SaxOptions sax = {}) {
  StringSource src(xml);
  std::string out;
  Status st = PretokenizeXml(&src, sax, &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(PretokTest, RoundTripsTheEventStream) {
  const char* corpus[] = {
      "<a><b/><b/></a>",
      "<book isbn=\"123\" price=\"$99\"><author>Knuth</author></book>",
      "<t>&lt;x&gt; &amp; text</t>",
      "<t>pre<![CDATA[mid]]>post</t>",
      "<a/><b/><c>t</c>",
      "<deep><deep><deep><leaf>x</leaf></deep></deep></deep>",
  };
  for (const char* xml : corpus) {
    StringSource direct_src(xml);
    SaxParser direct(&direct_src);
    std::vector<TracedEvent> expected = TraceSource(&direct);

    std::string bytes = Tokenize(xml);
    PretokSource pretok(bytes);
    std::vector<TracedEvent> got = TraceSource(&pretok);
    EXPECT_EQ(got, expected) << xml;
  }
}

TEST(PretokTest, TextViewsAliasTheFileBytes) {
  std::string bytes = Tokenize("<a>hello</a>");
  PretokSource src(bytes);
  XmlEvent ev;
  ASSERT_TRUE(src.Next(&ev).ok());  // <a>
  ASSERT_TRUE(src.Next(&ev).ok());  // text
  ASSERT_EQ(ev.type, XmlEventType::kText);
  EXPECT_EQ(ev.text, "hello");
  EXPECT_GE(ev.text.data(), bytes.data());
  EXPECT_LE(ev.text.data() + ev.text.size(), bytes.data() + bytes.size());
}

TEST(PretokTest, BindSymbolsRemapsIntoConsumerTable) {
  // A consumer table with prior contents: file ids must remap, not collide.
  SymbolTable table;
  SymbolId zebra = table.Intern(NodeKind::kElement, "zebra");
  std::string bytes = Tokenize("<a><b/>x</a>");
  PretokSource src(bytes);
  src.BindSymbols(&table);
  XmlEvent ev;
  ASSERT_TRUE(src.Next(&ev).ok());
  EXPECT_EQ(ev.name, "a");
  EXPECT_EQ(ev.symbol, table.Find(NodeKind::kElement, "a"));
  EXPECT_NE(ev.symbol, zebra);
  ASSERT_TRUE(src.Next(&ev).ok());
  EXPECT_EQ(ev.symbol, table.Find(NodeKind::kElement, "b"));
}

TEST(PretokTest, DefinesEachSymbolOnce) {
  // Many repeats of one element: the name bytes appear once in the file, so
  // a pretok cache is also a (crude) dictionary compressor for markup.
  std::string xml = "<list>";
  for (int i = 0; i < 100; ++i) xml += "<entry>v</entry>";
  xml += "</list>";
  std::string bytes = Tokenize(xml);
  std::size_t count = 0;
  for (std::size_t at = bytes.find("entry"); at != std::string::npos;
       at = bytes.find("entry", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_LT(bytes.size(), xml.size());
}

TEST(PretokTest, HeaderDeclaresTokenizationOptions) {
  // Consumers check the declared options before streaming: a cache built
  // under non-default tokenization must not replay silently as default.
  SaxOptions sax;
  sax.skip_whitespace_text = false;
  StringSource src("<a> <b/> </a>");
  std::string bytes;
  ASSERT_TRUE(PretokenizeXml(&src, sax, &bytes).ok());
  PretokSource reader(bytes);
  EXPECT_FALSE(reader.declared_options().skip_whitespace_text);
  EXPECT_TRUE(reader.declared_options().expand_attributes);

  std::string default_bytes = Tokenize("<a/>");
  PretokSource default_reader(default_bytes);
  EXPECT_TRUE(default_reader.declared_options().skip_whitespace_text);
}

TEST(PretokTest, RejectsUnexpandedAttributes) {
  // The format has no attribute-span records: tokenizing with attribute
  // expansion off must fail loudly rather than silently dropping the data.
  SaxOptions sax;
  sax.expand_attributes = false;
  StringSource src("<a x=\"1\"/>");
  std::string out;
  Status st = PretokenizeXml(&src, sax, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("expand_attributes"), std::string::npos);
}

TEST(PretokTest, RejectsCorruptStreams) {
  XmlEvent ev;
  {
    PretokSource src("not a pretok stream at all");
    EXPECT_FALSE(src.Next(&ev).ok());
  }
  {
    std::string truncated = Tokenize("<a>text</a>");
    truncated.resize(truncated.size() / 2);
    PretokSource src(truncated);
    Status st;
    do {
      st = src.Next(&ev);
    } while (st.ok() && ev.type != XmlEventType::kEndOfDocument);
    EXPECT_FALSE(st.ok());
  }
  {
    // Valid header, bogus opcode. bytes_consumed() before any Next() is
    // exactly the header size, i.e. the first record's offset.
    std::string bytes = Tokenize("<a/>");
    std::size_t first_record = PretokSource(bytes).bytes_consumed();
    bytes[first_record] = '\x7E';
    PretokSource src(bytes);
    EXPECT_FALSE(src.Next(&ev).ok());
  }
}

TEST(PretokTest, FileRoundTrip) {
  std::string dir = ::testing::TempDir();
  std::string xml_path = dir + "/xqmft_pretok_test.xml";
  std::string ptk_path = dir + "/xqmft_pretok_test.ptk";
  const std::string xml = "<doc><a k=\"v\">text &amp; more</a></doc>";
  std::FILE* f = std::fopen(xml_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(xml.data(), 1, xml.size(), f);
  std::fclose(f);

  ASSERT_TRUE(PretokenizeXmlFile(xml_path, ptk_path).ok());
  auto src = std::move(PretokSource::OpenFile(ptk_path).ValueOrDie());

  StringSource direct_src(xml);
  SaxParser direct(&direct_src);
  EXPECT_EQ(TraceSource(src.get()), TraceSource(&direct));
  std::remove(xml_path.c_str());
  std::remove(ptk_path.c_str());
}

TEST(PretokTest, CacheValidityTracksSourceIdentity) {
  std::string dir = ::testing::TempDir();
  std::string xml = dir + "/xqmft_fresh.xml";
  std::string ptk = dir + "/xqmft_fresh.ptk";
  auto write = [](const std::string& path, const char* data) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(data, 1, std::strlen(data), f);
    std::fclose(f);
  };
  write(xml, "<a>one</a>");
  EXPECT_FALSE(PretokCacheValid(ptk, xml));  // no cache yet
  ASSERT_TRUE(PretokenizeXmlFile(xml, ptk).ok());
  EXPECT_TRUE(PretokCacheValid(ptk, xml));
  EXPECT_FALSE(PretokCacheValid(ptk, dir + "/xqmft_missing.xml"));
  // Identity is content-based: a different document is rejected even when
  // its mtime predates the cache (restored backups, cp -p), and rewriting
  // the same bytes stays valid regardless of timestamps.
  write(xml, "<b>two</b>");
  EXPECT_FALSE(PretokCacheValid(ptk, xml));
  write(xml, "<a>one</a>");
  EXPECT_TRUE(PretokCacheValid(ptk, xml));
  // Same length, different bytes: the size check alone must not pass it.
  write(xml, "<a>eno</a>");
  EXPECT_FALSE(PretokCacheValid(ptk, xml));
  // Tokenized under different SAX options: rejected even for identical
  // bytes — the cache would replay different events.
  write(xml, "<a>one</a>");
  {
    SaxOptions keep_ws;
    keep_ws.skip_whitespace_text = false;
    ASSERT_TRUE(PretokenizeXmlFile(xml, ptk, keep_ws).ok());
    EXPECT_FALSE(PretokCacheValid(ptk, xml));
    EXPECT_TRUE(PretokCacheValid(ptk, xml, keep_ws));
  }
  // A cache with no declared identity (stream-tokenized, e.g. stdin) falls
  // back to requiring the cache mtime to be strictly newer than the input.
  write(xml, "<a>one</a>");
  {
    std::string bytes;
    PretokWriter writer(&bytes);  // default identity: 0/0
    StringSource s("<a>one</a>");
    SaxParser parser(&s);
    XmlEvent ev;
    do {
      ASSERT_TRUE(parser.Next(&ev).ok());
      ASSERT_TRUE(writer.Feed(ev).ok());
    } while (ev.type != XmlEventType::kEndOfDocument);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(WritePretokFile(bytes, ptk).ok());
    EXPECT_TRUE(PretokCacheValid(ptk, xml));  // cache newer than input
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    write(xml, "<a>one</a>");  // input touched after the cache was written
    EXPECT_FALSE(PretokCacheValid(ptk, xml));
  }
  std::remove(xml.c_str());
  std::remove(ptk.c_str());
}

TEST(PretokTest, BoundedRangeCutMidRecordFailsLoudly) {
  // A bounded source whose range cuts inside a record (a caller bug the
  // shard planner never produces) must error, not silently hand out the
  // next range's bytes as payload.
  std::string bytes = Tokenize("<a>hello world</a>");
  std::size_t records_begin = PretokSource(bytes).bytes_consumed();
  std::vector<std::string_view> no_prefix;
  for (std::size_t end = records_begin + 1; end < bytes.size(); ++end) {
    PretokSource src(bytes, records_begin, end, &no_prefix, 0);
    XmlEvent ev;
    Status st;
    do {
      st = src.Next(&ev);
      // Any payload handed out must lie inside the bounded range.
      if (st.ok() && ev.type == XmlEventType::kText) {
        EXPECT_LE(ev.text.data() + ev.text.size(), bytes.data() + end);
      }
    } while (st.ok() && ev.type != XmlEventType::kEndOfDocument);
    // Cuts at record boundaries with balanced tags may succeed; cuts that
    // strand an open element or split a record must fail. Either way: no
    // out-of-range bytes (checked above), no hang, no crash.
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(PretokTest, RepeatedEndOfDocumentClearsViews) {
  std::string bytes = Tokenize("<a>hello</a>");
  PretokSource src(bytes);
  XmlEvent ev;
  do {
    ASSERT_TRUE(src.Next(&ev).ok());
  } while (ev.type != XmlEventType::kEndOfDocument);
  // EventSource contract: after kEndOfDocument, Next keeps returning it —
  // with no stale views from earlier events (SaxParser parity).
  ev.name = "stale";
  ev.text = "stale";
  ASSERT_TRUE(src.Next(&ev).ok());
  EXPECT_EQ(ev.type, XmlEventType::kEndOfDocument);
  EXPECT_TRUE(ev.name.empty());
  EXPECT_TRUE(ev.text.empty());
  EXPECT_EQ(ev.attrs, nullptr);
}

// ---------------------------------------------------------------------------
// Differential: engine output is byte-identical under text and pretok input
// (and both match the reference interpreter) across the Figure 3 corpus.
// ---------------------------------------------------------------------------

Forest RandomForest(Rng* rng, int depth) {
  Forest f;
  int width = static_cast<int>(rng->Below(4));
  for (int i = 0; i < width; ++i) {
    if (depth > 0 && rng->Chance(3, 5)) {
      f.push_back(Tree::Element(
          std::string(1, static_cast<char>('a' + rng->Below(4))),
          RandomForest(rng, depth - 1)));
    } else if (f.empty() || f.back().kind != NodeKind::kText) {
      f.push_back(Tree::Text("t" + std::to_string(rng->Below(5))));
    }
  }
  return f;
}

class PretokEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PretokEquivalence, PretokMatchesTextStreaming) {
  const auto& [id, seed] = GetParam();
  const BenchQuery& bq = QueryById(id);
  auto cq = std::move(CompiledQuery::Compile(bq.text).ValueOrDie());

  Rng rng(static_cast<std::uint64_t>(seed) * 40009 + 11);
  Forest doc;
  doc.push_back(Tree::Element("site", RandomForest(&rng, 4)));
  std::string xml = ForestToXml(doc);

  StringSink text_out;
  ASSERT_TRUE(cq->StreamString(xml, &text_out).ok()) << bq.id;

  std::string bytes = Tokenize(xml);
  PretokSource pretok(bytes);
  StringSink pretok_out;
  ASSERT_TRUE(cq->StreamEvents(&pretok, &pretok_out).ok()) << bq.id;

  EXPECT_EQ(pretok_out.str(), text_out.str()) << bq.id;

  // Both agree with the non-streaming reference evaluation.
  StringSink expected;
  Forest ref = std::move(cq->Evaluate(doc).ValueOrDie());
  EmitForest(ref, &expected);
  EXPECT_EQ(text_out.str(), expected.str()) << bq.id << " (reference)";
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PretokEquivalence,
    ::testing::Combine(::testing::Values("q01", "q02", "q04", "q13", "q16",
                                         "q17", "double", "fourstar",
                                         "deepdup"),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<PretokEquivalence::ParamType>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace xqmft
