// Tests for single-pass multi-query streaming (src/multiquery/ and the
// core/service wiring above it): the push-mode Engine contract, the
// differential property that one shared pass is byte-identical to per-query
// serial runs (Figure 3 corpus, text and pretok sources, every refill chunk
// size 1..64), the single-parse property (the shared source is scanned
// exactly once regardless of query-set size), union projection soundness
// (kept ancestor spines — the reparenting counterexample), and per-plan
// failure isolation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "event_trace_util.h"
#include "multiquery/multi_run.h"
#include "multiquery/projection.h"
#include "multiquery/union_projection.h"
#include "stream/engine.h"
#include "xml/events.h"
#include "xml/pretok.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

using Plans = std::vector<std::shared_ptr<const CompiledPlan>>;

Plans CompileSet(const std::vector<std::string>& texts) {
  Plans plans;
  for (const std::string& t : texts) {
    auto plan = CompiledPlan::Compile(t);
    EXPECT_TRUE(plan.ok()) << t << ": " << plan.status().ToString();
    plans.push_back(plan.value());
  }
  return plans;
}

std::vector<const CompiledPlan*> Raw(const Plans& plans) {
  std::vector<const CompiledPlan*> raw;
  for (const auto& p : plans) raw.push_back(p.get());
  return raw;
}

std::vector<std::string> SerialOutputs(const Plans& plans,
                                       const std::string& xml) {
  std::vector<std::string> out;
  for (const auto& p : plans) {
    StringSink sink;
    Status st = p->StreamString(xml, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
    out.push_back(sink.str());
  }
  return out;
}

// The first `n` Figure 3 queries: n=1,2 are fully projectable; n>=3 include
// q04 (following-sibling), which disables the union automaton — both sides
// of the projection switch are exercised by the {1,2,4,8} ladder.
std::vector<std::string> Fig3Set(std::size_t n) {
  const auto& corpus = Figure3Queries();
  std::vector<std::string> texts;
  for (std::size_t i = 0; i < n; ++i) {
    texts.push_back(corpus[i % corpus.size()].text);
  }
  return texts;
}

std::string XmarkDoc(std::size_t bytes, std::uint64_t seed = 7) {
  auto doc = GenerateDatasetString(DatasetKind::kXmark, bytes, seed);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.value();
}

// Counts bytes handed out via Read and never exposes Contents, so every
// byte the run consumes is observable — the single-parse property check.
class CountingSource : public ByteSource {
 public:
  explicit CountingSource(std::string_view s) : s_(s) {}
  std::size_t Read(char* buf, std::size_t n) override {
    std::size_t take = std::min(n, s_.size() - pos_);
    std::memcpy(buf, s_.data() + pos_, take);
    pos_ += take;
    bytes_read_ += take;
    return take;
  }
  std::size_t bytes_read() const { return bytes_read_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t bytes_read_ = 0;
};

// ---------------------------------------------------------------------------
// Push-mode Engine contract

TEST(PushEngine, ManualFeedMatchesPullPump) {
  auto plan = CompiledPlan::Compile(
      "<out>{ for $x in $input/doc/a return <hit>{$x/text()}</hit> }</out>");
  ASSERT_TRUE(plan.ok());
  const std::string xml = "<doc><a>1</a><b>skip</b><a>2</a></doc>";

  StringSink serial;
  ASSERT_TRUE(plan.value()->StreamString(xml, &serial).ok());

  StringSink pushed;
  Engine engine(plan.value()->mft(), &pushed,
                plan.value()->options().stream);
  StringSource src(xml);
  SaxParser parser(&src, {});
  parser.BindSymbols(engine.symbols());
  ASSERT_TRUE(engine.Prime().ok());
  XmlEvent ev;
  while (!engine.done()) {
    ASSERT_TRUE(parser.Next(&ev).ok());
    ASSERT_TRUE(engine.Feed(ev).ok());
    if (ev.type == XmlEventType::kEndOfDocument) break;
  }
  StreamStats stats;
  ASSERT_TRUE(engine.Finish(&stats).ok());
  EXPECT_EQ(pushed.str(), serial.str());
  EXPECT_GT(stats.output_events, 0u);
  // Finish is idempotent.
  EXPECT_TRUE(engine.Finish().ok());
}

TEST(PushEngine, FinishSuppliesEndOfDocument) {
  // A constant query needs no input at all: Prime + Finish must produce the
  // full output without the driver ever feeding an event.
  auto plan = CompiledPlan::Compile("<out>done</out>");
  ASSERT_TRUE(plan.ok());
  StringSink sink;
  Engine engine(plan.value()->mft(), &sink,
                plan.value()->options().stream);
  EXPECT_TRUE(engine.Finish().ok());
  EXPECT_EQ(sink.str(), "<out>done</out>");
}

TEST(PushEngine, ErrorsAreSticky) {
  auto plan = CompiledPlan::Compile(
      "<out>{ for $x in $input//a return <h>{$x}</h> }</out>");
  ASSERT_TRUE(plan.ok());
  StreamOptions options = plan.value()->options().stream;
  options.max_steps = 1;  // the step budget trips immediately
  // Pin the table machine: the ops engine charges one step per consumer
  // per event, so this budget would only trip at the end element there.
  options.engine = EngineChoice::kTable;
  StringSink sink;
  Engine engine(plan.value()->mft(), &sink, options);
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";
  Status first = engine.Feed(ev);
  ASSERT_FALSE(first.ok());
  ev.type = XmlEventType::kEndElement;
  Status second = engine.Feed(ev);
  EXPECT_EQ(second.ToString(), first.ToString());
  EXPECT_EQ(engine.Finish().ToString(), first.ToString());
}

// ---------------------------------------------------------------------------
// Differential: single pass vs per-query serial runs

TEST(MultiQuery, Fig3DifferentialTextAllChunkSizes) {
  const std::string xml = XmarkDoc(4 * 1024);
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    Plans plans = CompileSet(Fig3Set(n));
    std::vector<std::string> want = SerialOutputs(plans, xml);
    for (std::size_t chunk = 1; chunk <= 64; ++chunk) {
      std::vector<StringSink> sinks(n);
      std::vector<OutputSink*> sink_ptrs;
      for (auto& s : sinks) sink_ptrs.push_back(&s);
      ChunkedSource source(xml, chunk);
      std::vector<MultiPlanResult> results;
      MultiQueryStats run_stats;
      Status st = StreamAllTransform(Raw(plans), &source, sink_ptrs, {},
                                     &results, &run_stats);
      ASSERT_TRUE(st.ok()) << "n=" << n << " chunk=" << chunk << ": "
                           << st.ToString();
      ASSERT_EQ(results.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
        EXPECT_EQ(sinks[i].str(), want[i])
            << "n=" << n << " chunk=" << chunk << " plan=" << i;
      }
    }
  }
}

TEST(MultiQuery, Fig3DifferentialPretok) {
  const std::string xml = XmarkDoc(16 * 1024);
  StringSource src(xml);
  std::string pretok;
  ASSERT_TRUE(PretokenizeXml(&src, {}, &pretok).ok());
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    Plans plans = CompileSet(Fig3Set(n));
    std::vector<std::string> want = SerialOutputs(plans, xml);
    std::vector<StringSink> sinks(n);
    std::vector<OutputSink*> sink_ptrs;
    for (auto& s : sinks) sink_ptrs.push_back(&s);
    std::vector<MultiPlanResult> results;
    Status st = StreamAllTransformInput(Raw(plans),
                                        ParallelInput::PretokBytes(pretok),
                                        sink_ptrs, {}, &results, nullptr);
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
      EXPECT_EQ(sinks[i].str(), want[i]) << "n=" << n << " plan=" << i;
    }
  }
}

TEST(MultiQuery, DifferentialHoldsWithProjectionOff) {
  const std::string xml = XmarkDoc(16 * 1024);
  Plans plans = CompileSet(Fig3Set(4));
  std::vector<std::string> want = SerialOutputs(plans, xml);
  std::vector<StringSink> sinks(plans.size());
  std::vector<OutputSink*> sink_ptrs;
  for (auto& s : sinks) sink_ptrs.push_back(&s);
  StringSource source(xml);
  MultiQueryOptions options;
  options.union_projection = false;
  MultiQueryStats run_stats;
  ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, options,
                                 nullptr, &run_stats)
                  .ok());
  EXPECT_FALSE(run_stats.projection_enabled);
  EXPECT_EQ(run_stats.events_skipped, 0u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(sinks[i].str(), want[i]);
  }
}

// ---------------------------------------------------------------------------
// Single-parse property: the shared source is scanned exactly once,
// regardless of how many plans ride the pass.

TEST(MultiQuery, SharedSourceScannedExactlyOnce) {
  const std::string xml = XmarkDoc(16 * 1024);
  std::size_t one_pass = 0;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    Plans plans = CompileSet(Fig3Set(n));
    std::vector<StringSink> sinks(n);
    std::vector<OutputSink*> sink_ptrs;
    for (auto& s : sinks) sink_ptrs.push_back(&s);
    CountingSource source(xml);
    MultiQueryStats run_stats;
    ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, {},
                                   nullptr, &run_stats)
                    .ok());
    // Bytes leaving the source equal one full scan — not n scans. (All
    // Figure 3 streams read to the end of the document, so the count is the
    // same across n; the first iteration pins it.)
    if (one_pass == 0) one_pass = source.bytes_read();
    EXPECT_EQ(source.bytes_read(), one_pass) << "n=" << n;
    EXPECT_EQ(source.bytes_read(), xml.size()) << "n=" << n;
    EXPECT_EQ(run_stats.bytes_in, xml.size()) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Union projection

TEST(MultiQuery, ProjectionSkipsEventsWithoutChangingOutput) {
  const std::string xml = XmarkDoc(32 * 1024);
  // Two projectable queries (Q1, Q2): people and open-auction subtrees are
  // kept, everything else (regions, catgraph, closed auctions) is skipped.
  Plans plans = CompileSet(Fig3Set(2));
  std::vector<std::string> want = SerialOutputs(plans, xml);
  std::vector<StringSink> sinks(plans.size());
  std::vector<OutputSink*> sink_ptrs;
  for (auto& s : sinks) sink_ptrs.push_back(&s);
  StringSource source(xml);
  std::vector<MultiPlanResult> results;
  MultiQueryStats run_stats;
  ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, {}, &results,
                                 &run_stats)
                  .ok());
  EXPECT_TRUE(run_stats.projection_enabled);
  EXPECT_GT(run_stats.events_skipped, 0u);
  EXPECT_GT(run_stats.events_total, run_stats.events_skipped);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(sinks[i].str(), want[i]);
    // Engines see only the surviving events.
    EXPECT_EQ(results[i].events_fed,
              run_stats.events_total - run_stats.events_skipped);
  }
}

TEST(MultiQuery, ProjectionKeepsAncestorSpines) {
  // The reparenting counterexample: //c/d and //d/e over a document where
  // the real //d/e match sits under a c, separated by an x. A projection
  // that flattened kept nodes under their nearest kept ancestor would
  // reparent d directly under c, manufacturing a //c/d match that does not
  // exist in the document. The automaton must keep the x spine (or skip
  // nothing) so both queries see the truth.
  const std::vector<std::string> texts = {
      "<out>{ for $v in $input//c/d return <cd></cd> }</out>",
      "<out>{ for $v in $input//d/e return <de></de> }</out>"};
  const std::string xml = "<r><c><x><d><e/></d></x></c></r>";
  Plans plans = CompileSet(texts);
  std::vector<std::string> want = SerialOutputs(plans, xml);
  EXPECT_EQ(want[0], "<out></out>");    // no //c/d in the document
  EXPECT_EQ(want[1], "<out><de></de></out>");
  std::vector<StringSink> sinks(2);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1]};
  StringSource source(xml);
  MultiQueryStats run_stats;
  ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, {}, nullptr,
                                 &run_stats)
                  .ok());
  EXPECT_TRUE(run_stats.projection_enabled);
  EXPECT_EQ(sinks[0].str(), want[0]);
  EXPECT_EQ(sinks[1].str(), want[1]);
}

TEST(MultiQuery, ConstantQueriesSkipTheWholeDocument) {
  const std::vector<std::string> texts = {"<a>x</a>", "<b>y</b>"};
  Plans plans = CompileSet(texts);
  std::vector<StringSink> sinks(2);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1]};
  const std::string xml = "<doc><p>1</p><q><r>2</r></q></doc>";
  StringSource source(xml);
  MultiQueryStats run_stats;
  ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, {}, nullptr,
                                 &run_stats)
                  .ok());
  EXPECT_EQ(sinks[0].str(), "<a>x</a>");
  EXPECT_EQ(sinks[1].str(), "<b>y</b>");
  EXPECT_TRUE(run_stats.projection_enabled);
  // A query set that reads nothing skips every element of the document.
  EXPECT_EQ(run_stats.events_skipped, run_stats.events_total);
}

TEST(MultiQuery, UnprojectablePlanDisablesProjection) {
  // q04 uses following-sibling: its projection is whole_document, which
  // must switch skipping off for the entire run.
  Plans plans = CompileSet({Fig3Set(3)[2], Fig3Set(1)[0]});
  EXPECT_TRUE(plans[0]->projection().whole_document);
  EXPECT_FALSE(plans[1]->projection().whole_document);
  const std::string xml = XmarkDoc(8 * 1024);
  std::vector<StringSink> sinks(2);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1]};
  StringSource source(xml);
  MultiQueryStats run_stats;
  ASSERT_TRUE(StreamAllTransform(Raw(plans), &source, sink_ptrs, {}, nullptr,
                                 &run_stats)
                  .ok());
  EXPECT_FALSE(run_stats.projection_enabled);
  EXPECT_EQ(run_stats.events_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Failure isolation

TEST(MultiQuery, PlanFailureLeavesSiblingsIntact) {
  const std::string xml = XmarkDoc(8 * 1024);
  Plans plans = CompileSet(Fig3Set(3));
  std::vector<std::string> want = SerialOutputs(plans, xml);
  // Recompile the middle plan with a step budget it must blow mid-stream.
  PipelineOptions tiny;
  tiny.stream.max_steps = 50;
  auto failing = CompiledPlan::Compile(Fig3Set(3)[1], tiny);
  ASSERT_TRUE(failing.ok());
  plans[1] = failing.value();

  std::vector<StringSink> sinks(3);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1], &sinks[2]};
  StringSource source(xml);
  std::vector<MultiPlanResult> results;
  Status st =
      StreamAllTransform(Raw(plans), &source, sink_ptrs, {}, &results, nullptr);
  // With results requested and surviving siblings, the run itself is OK.
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(sinks[0].str(), want[0]);
  EXPECT_EQ(sinks[2].str(), want[2]);
}

TEST(MultiQuery, AllPlansFailingFailsTheRun) {
  PipelineOptions tiny;
  tiny.stream.max_steps = 1;
  auto plan = CompiledPlan::Compile(Fig3Set(1)[0], tiny);
  ASSERT_TRUE(plan.ok());
  std::vector<StringSink> sinks(1);
  std::vector<OutputSink*> sink_ptrs{&sinks[0]};
  const std::string xml = XmarkDoc(4 * 1024);
  StringSource source(xml);
  std::vector<MultiPlanResult> results;
  Status st = StreamAllTransform({plan.value().get()}, &source, sink_ptrs,
                                 {}, &results, nullptr);
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
}

TEST(MultiQuery, MixedTokenizationRejected) {
  auto a = CompiledPlan::Compile(Fig3Set(1)[0]);
  PipelineOptions keep_ws;
  keep_ws.stream.sax.skip_whitespace_text = false;
  auto b = CompiledPlan::Compile(Fig3Set(2)[1], keep_ws);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  StringSink s1, s2;
  std::vector<OutputSink*> sink_ptrs{&s1, &s2};
  StringSource source("<doc/>");
  Status st = StreamAllTransform({a.value().get(), b.value().get()},
                                 &source, sink_ptrs, {}, nullptr, nullptr);
  EXPECT_FALSE(st.ok());
}

// ---------------------------------------------------------------------------
// Projection derivation

TEST(Projection, DerivesKeepNodeAndKeepSubtreePaths) {
  auto plan = CompiledPlan::Compile(
      "<out>{ for $p in $input/site/people/person return "
      "<n>{$p/name/text()}</n> }</out>");
  ASSERT_TRUE(plan.ok());
  const QueryProjection& proj = plan.value()->projection();
  EXPECT_FALSE(proj.whole_document);
  bool saw_binding = false, saw_copy = false;
  for (const ProjectionPath& p : proj.paths) {
    if (!p.keep_subtree && p.steps.size() == 3) saw_binding = true;
    if (p.keep_subtree && p.steps.size() == 5) saw_copy = true;
  }
  EXPECT_TRUE(saw_binding);  // site/people/person
  EXPECT_TRUE(saw_copy);     // site/people/person/name/text()
}

TEST(Projection, BareInputIsUnprojectable) {
  auto plan = CompiledPlan::Compile("<out>{$input}</out>");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value()->projection().whole_document);
}

TEST(Projection, PredicatePathsBecomeKeepSubtree) {
  auto plan = CompiledPlan::Compile(
      "<out>{ for $p in $input//person[./id/text()=\"p0\"] return <h></h> "
      "}</out>");
  ASSERT_TRUE(plan.ok());
  const QueryProjection& proj = plan.value()->projection();
  EXPECT_FALSE(proj.whole_document);
  bool saw_pred = false;
  for (const ProjectionPath& p : proj.paths) {
    if (p.keep_subtree && p.steps.size() >= 2) saw_pred = true;
  }
  EXPECT_TRUE(saw_pred);  // //person/id/text() keeps the compared text
}

}  // namespace
}  // namespace xqmft
