// Tests for the XQuery-to-MFT translation (Section 3).
//
// The central property is Theorem 1: [[M_P]](f) = [[P]](f) — the translated
// transducer, run by the reference MFT interpreter, must agree with the
// reference XQuery evaluator on every document. Exercised on the paper's
// worked examples, feature-focused micro-queries, and the full Figure 3
// corpus over randomized documents.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_common/queries.h"
#include "mft/interp.h"
#include "mft/mft.h"
#include "mft/optimize.h"
#include "translate/translate.h"
#include "util/rng.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

Forest MustParseXml(const std::string& xml) {
  return std::move(ParseXmlForest(xml).ValueOrDie());
}

// Asserts the Theorem 1 property on one (query, document) pair, for both the
// raw and the optimized transducer.
void ExpectAgreement(const std::string& query_text, const Forest& doc,
                     const std::string& label) {
  auto parsed = ParseQuery(query_text);
  ASSERT_TRUE(parsed.ok()) << label << ": " << parsed.status().ToString();
  const QueryExpr& query = *parsed.value();

  Result<Forest> expected = EvaluateQuery(query, doc);
  ASSERT_TRUE(expected.ok()) << label << ": " << expected.status().ToString();

  Result<Mft> mft = TranslateQuery(query);
  ASSERT_TRUE(mft.ok()) << label << ": " << mft.status().ToString();

  Result<Forest> got = RunMft(mft.value(), doc);
  ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
  EXPECT_EQ(ForestToTerm(got.value()), ForestToTerm(expected.value()))
      << label << "\ninput: " << ForestToTerm(doc);

  Mft optimized = OptimizeMft(mft.value());
  Result<Forest> got_opt = RunMft(optimized, doc);
  ASSERT_TRUE(got_opt.ok()) << label << " (optimized): "
                            << got_opt.status().ToString();
  EXPECT_EQ(ForestToTerm(got_opt.value()), ForestToTerm(expected.value()))
      << label << " (optimized)\ninput: " << ForestToTerm(doc);
}

TEST(TranslateTest, StringConstant) {
  ExpectAgreement("<out>hi</out>", MustParseXml("<a/>"), "string");
}

TEST(TranslateTest, NestedElements) {
  ExpectAgreement("<a><b>x</b><c><d>y</d></c></a>", {}, "elements");
}

TEST(TranslateTest, BareInputVariable) {
  ExpectAgreement("<out>{$input}</out>",
                  MustParseXml("<a><b>t</b></a><c/>"), "bare-input");
}

TEST(TranslateTest, SimpleChildPath) {
  ExpectAgreement("<out>{$input/a}</out>",
                  MustParseXml("<a>1</a><b/><a><a>2</a></a>"), "child");
}

TEST(TranslateTest, ChildChainPath) {
  ExpectAgreement(
      "<out>{$input/r/a/b}</out>",
      MustParseXml("<r><a><b>1</b><c/><b>2</b></a><b>not</b></r>"), "chain");
}

TEST(TranslateTest, DescendantPath) {
  ExpectAgreement("<out>{$input//a}</out>",
                  MustParseXml("<r><a><a><a/></a></a><b><a/></b></r>"),
                  "descendant-nested");
}

TEST(TranslateTest, DescendantChildMix) {
  ExpectAgreement(
      "<out>{$input//a/b}</out>",
      MustParseXml("<doc><a><b><c/></b></a><x><a><b/></a></x></doc>"),
      "desc-child");
}

TEST(TranslateTest, OverlappingDescendants) {
  // //a//a: the subset construction must not double-report.
  ExpectAgreement("<out>{$input//a//a}</out>",
                  MustParseXml("<a><a><a/></a></a>"), "overlap");
}

TEST(TranslateTest, TextSelection) {
  ExpectAgreement("<out>{$input/r/text()}</out>",
                  MustParseXml("<r>one<a>skip</a>two</r>"), "text");
}

TEST(TranslateTest, StarAndNodeTests) {
  Forest doc = MustParseXml("<r>t<a><b/>u</a></r>");
  ExpectAgreement("<out>{$input/r/*}</out>", doc, "star");
  ExpectAgreement("<out>{$input/r/node()}</out>", doc, "node");
}

TEST(TranslateTest, ForLoopWithBody) {
  ExpectAgreement(
      "for $v in $input/r/a return <m>{$v/text()}</m>",
      MustParseXml("<r><a>1</a><b>skip</b><a>2</a></r>"), "for-body");
}

TEST(TranslateTest, ForBareVariableCopy) {
  ExpectAgreement("for $v in $input/r/a return <w>{$v}</w>",
                  MustParseXml("<r><a><b>t</b></a><a/></r>"), "for-copy");
}

TEST(TranslateTest, NestedForLoops) {
  ExpectAgreement(
      "for $x in $input/r/g return <grp>{for $y in $x/v return "
      "<val>{$y/text()}</val>}</grp>",
      MustParseXml("<r><g><v>1</v><v>2</v></g><g><v>3</v></g><g/></r>"),
      "nested-for");
}

TEST(TranslateTest, LetBinding) {
  ExpectAgreement(
      "for $p in $input/r return let $v := $p/a/text() return "
      "<out>{$v}{$v}</out>",
      MustParseXml("<r><a>x</a><a>y</a></r>"), "let");
}

TEST(TranslateTest, SequenceOutput) {
  ExpectAgreement(
      "for $v in $input/r/a return ($v/b,$v/c)",
      MustParseXml("<r><a><c>1</c><b>2</b></a><a><b>3</b></a></r>"),
      "sequence");
}

TEST(TranslateTest, FollowingSibling) {
  ExpectAgreement(
      "<out>{$input/r/a/following-sibling::b}</out>",
      MustParseXml("<r><b>0</b><a/><b>1</b><c/><b>2</b></r>"), "fs");
}

TEST(TranslateTest, FollowingSiblingChained) {
  ExpectAgreement(
      "<out>{$input/r/a/following-sibling::b/c}</out>",
      MustParseXml("<r><a/><b><c>1</c></b><b><d/><c>2</c></b></r>"),
      "fs-chain");
}

TEST(TranslateTest, ExistencePredicate) {
  ExpectAgreement(
      "<out>{$input/r/p[./q]}</out>",
      MustParseXml("<r><p><q/></p><p/><p><x><q/></x></p></r>"), "exists");
}

TEST(TranslateTest, ExistencePredicateDeepPath) {
  ExpectAgreement(
      "<out>{$input/r/p[./a/b/c]}</out>",
      MustParseXml("<r><p><a><b><c/></b></a></p><p><a><b/></a></p></r>"),
      "exists-deep");
}

TEST(TranslateTest, EmptyPredicate) {
  ExpectAgreement(
      "<out>{$input/r/p[empty(./h/text())]}</out>",
      MustParseXml("<r><p><h>x</h></p><p/><p><h/></p></r>"), "empty");
}

TEST(TranslateTest, EqualsPredicate) {
  ExpectAgreement(
      "<out>{$input/r/p[./id/text()=\"person0\"]}</out>",
      MustParseXml("<r><p><id>person0</id><v>A</v></p>"
                   "<p><id>person1</id><v>B</v></p>"
                   "<p><a/><id>person0</id></p></r>"),
      "equals");
}

TEST(TranslateTest, EqualsPredicateSecondWitness) {
  // The paper's else-branch walkthrough: the first p_id fails, the second
  // succeeds; the chain scan must resume via the else parameter.
  ExpectAgreement(
      "<out>{$input/p[./id/text()=\"x\"]}</out>",
      MustParseXml("<p><id>y</id><n>1</n><id>x</id></p>"), "equals-resume");
}

TEST(TranslateTest, NotEqualsPredicate) {
  ExpectAgreement(
      "<out>{$input/r/p[./id/text()!=\"a\"]}</out>",
      MustParseXml("<r><p><id>a</id><id>b</id></p><p><id>a</id></p>"
                   "<p><id>c</id></p></r>"),
      "not-equals");
}

TEST(TranslateTest, MultiplePredicatesConjunction) {
  ExpectAgreement(
      "<out>{$input/r/p[./q][./s]}</out>",
      MustParseXml("<r><p><q/><s/></p><p><q/></p><p><s/></p></r>"), "conj");
}

TEST(TranslateTest, PredicateOnIntermediateStep) {
  ExpectAgreement(
      "<out>{$input/r/g[./flag]/v}</out>",
      MustParseXml("<r><g><flag/><v>1</v></g><g><v>2</v></g>"
                   "<g><flag/><v>3</v><v>4</v></g></r>"),
      "mid-pred");
}

TEST(TranslateTest, NestedPredicates) {
  ExpectAgreement(
      "<out>{$input/r/p[./a[./b]/c]}</out>",
      MustParseXml("<r><p><a><b/><c/></a></p><p><a><c/></a></p>"
                   "<p><a><b/></a><a><c/></a></p></r>"),
      "nested-pred");
}

TEST(TranslateTest, Q4StylePredicate) {
  ExpectAgreement(
      "<out>{$input/s/oa[./bidder[./pr/text()=\"XX\"]"
      "/following-sibling::bidder/pr/text()=\"YY\"]}</out>",
      MustParseXml(
          "<s>"
          "<oa><bidder><pr>XX</pr></bidder><bidder><pr>YY</pr></bidder></oa>"
          "<oa><bidder><pr>YY</pr></bidder><bidder><pr>XX</pr></bidder></oa>"
          "<oa><bidder><pr>XX</pr></bidder></oa>"
          "</s>"),
      "q4-style");
}

TEST(TranslateTest, PredicateOnDescendantStep) {
  ExpectAgreement(
      "<out>{$input//p[./id/text()=\"x\"]}</out>",
      MustParseXml("<r><p><id>x</id><p><id>y</id></p></p><d><p><id>x</id>"
                   "</p></d></r>"),
      "desc-pred");
}

TEST(TranslateTest, PaperSection21Example) {
  ExpectAgreement(
      kSection21Query,
      MustParseXml("<doc><a><b><c><c/></c><d/><d/></b><b><d/></b></a></doc>"),
      "section-2.1");
}

TEST(TranslateTest, PaperPersonQuery) {
  ExpectAgreement(kPersonQuery,
                  MustParseXml("<person><p_id><a/>person0</p_id>"
                               "<name>Jim</name><c/><name>Li</name></person>"),
                  "pperson-hit");
  ExpectAgreement(kPersonQuery,
                  MustParseXml("<person><p_id><a/>perso7</p_id>"
                               "<name>Jim</name><c/><p_id>person0</p_id>"
                               "</person>"),
                  "pperson-else");
}

TEST(TranslateTest, TranslationIsLinearTimeShape) {
  // Theorem 1's construction bound: |M_P| grows linearly for a linear
  // family of queries (a chain of nested elements).
  std::string q = "<a>x</a>";
  std::size_t prev_size = 0;
  std::size_t prev_delta = 0;
  for (int i = 0; i < 4; ++i) {
    auto parsed = std::move(ParseQuery(q).ValueOrDie());
    Mft m = std::move(TranslateQuery(*parsed).ValueOrDie());
    std::size_t size = m.Size();
    if (prev_size != 0 && prev_delta != 0) {
      // Growth stays (roughly) constant per added element.
      std::size_t delta = size - prev_size;
      EXPECT_LE(delta, prev_delta + 8);
    }
    if (prev_size != 0) prev_delta = size - prev_size;
    prev_size = size;
    q = "<w><u>" + q + "</u></w>";
  }
}

// ---------------------------------------------------------------------------
// Figure 3 corpus over randomized XMark-like micro documents
// ---------------------------------------------------------------------------

// A tiny randomized XMark-shaped document exercising every element the
// Figure 3 queries touch.
Forest RandomMicroXmark(Rng* rng) {
  Forest people;
  int npers = static_cast<int>(rng->Below(4));
  for (int i = 0; i < npers; ++i) {
    Forest kids;
    kids.push_back(Tree::Element(
        "person_id",
        {Tree::Text("person" + std::to_string(rng->Below(3)))}));
    kids.push_back(Tree::Element(
        "name", {Tree::Text("n" + std::to_string(rng->Below(10)))}));
    if (rng->Chance(1, 2)) {
      Forest hp;
      if (rng->Chance(2, 3)) hp.push_back(Tree::Text("http://x"));
      kids.push_back(Tree::Element("homepage", std::move(hp)));
    }
    people.push_back(Tree::Element("person", std::move(kids)));
  }

  Forest auctions;
  int nauc = static_cast<int>(rng->Below(3));
  for (int i = 0; i < nauc; ++i) {
    Forest kids;
    int nbid = static_cast<int>(rng->Below(4));
    for (int b = 0; b < nbid; ++b) {
      Forest bid;
      bid.push_back(Tree::Element(
          "personref",
          {Tree::Element("personref_person",
                         {Tree::Text(rng->Chance(1, 2) ? "personXX"
                                                       : "personYY")})}));
      bid.push_back(Tree::Element(
          "increase", {Tree::Text(std::to_string(rng->Below(100)))}));
      kids.push_back(Tree::Element("bidder", std::move(bid)));
    }
    kids.push_back(Tree::Element(
        "reserve", {Tree::Text(std::to_string(rng->Below(1000)))}));
    auctions.push_back(Tree::Element("open_auction", std::move(kids)));
  }

  Forest closed;
  int nclosed = static_cast<int>(rng->Below(3));
  for (int i = 0; i < nclosed; ++i) {
    Forest kids;
    kids.push_back(Tree::Element(
        "seller", {Tree::Element("seller_person",
                                 {Tree::Text("person0")})}));
    if (rng->Chance(1, 2)) {
      // The deep Q16 path, sometimes truncated so the predicate fails.
      Forest keyword;
      if (rng->Chance(2, 3)) keyword.push_back(Tree::Text("gold"));
      Tree deep = Tree::Element(
          "annotation",
          {Tree::Element(
              "description",
              {Tree::Element(
                  "parlist",
                  {Tree::Element(
                      "listitem",
                      {Tree::Element(
                          "parlist",
                          {Tree::Element(
                              "listitem",
                              {Tree::Element(
                                  "text",
                                  {Tree::Element(
                                      "emph",
                                      {Tree::Element("keyword",
                                                     std::move(keyword))})})})})})})})});
      kids.push_back(std::move(deep));
    }
    closed.push_back(Tree::Element("closed_auction", std::move(kids)));
  }

  Forest items;
  int nitems = static_cast<int>(rng->Below(3));
  for (int i = 0; i < nitems; ++i) {
    items.push_back(Tree::Element(
        "item",
        {Tree::Element("name", {Tree::Text("i" + std::to_string(i))}),
         Tree::Element("description",
                       {Tree::Element("text", {Tree::Text("desc")})})}));
  }

  Forest site;
  site.push_back(Tree::Element("people", std::move(people)));
  site.push_back(Tree::Element("open_auctions", std::move(auctions)));
  site.push_back(Tree::Element("closed_auctions", std::move(closed)));
  site.push_back(Tree::Element(
      "regions", {Tree::Element("australia", std::move(items))}));
  return {Tree::Element("site", std::move(site))};
}

struct CorpusCase {
  const char* query_id;
  int seed;
};

class Figure3Property
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(Figure3Property, TranslatedMftAgreesWithReferenceEvaluator) {
  const auto& [id, seed] = GetParam();
  const BenchQuery& bq = QueryById(id);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  Forest doc = RandomMicroXmark(&rng);
  ExpectAgreement(bq.text, doc, bq.id);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Figure3Property,
    ::testing::Combine(::testing::Values("q01", "q02", "q04", "q13", "q16",
                                         "q17", "double", "fourstar",
                                         "deepdup"),
                       ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<Figure3Property::ParamType>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Generic random documents for the structure-agnostic queries.
class GenericDocProperty : public ::testing::TestWithParam<int> {};

TEST_P(GenericDocProperty, CornerCaseQueriesOnRandomTrees) {
  Rng rng(GetParam());
  std::function<Forest(int)> gen = [&](int depth) -> Forest {
    Forest f;
    int width = static_cast<int>(rng.Below(4));
    for (int i = 0; i < width; ++i) {
      if (depth > 0 && rng.Chance(3, 5)) {
        f.push_back(Tree::Element(
            std::string(1, static_cast<char>('a' + rng.Below(4))),
            gen(depth - 1)));
      } else if (f.empty() || f.back().kind != NodeKind::kText) {
        f.push_back(Tree::Text("t" + std::to_string(rng.Below(5))));
      }
    }
    return f;
  };
  Forest doc = gen(5);
  ExpectAgreement(QueryById("double").text, doc, "double-random");
  ExpectAgreement(QueryById("fourstar").text, doc, "fourstar-random");
  ExpectAgreement(QueryById("deepdup").text, doc, "deepdup-random");
  ExpectAgreement(kSection21Query, doc, "section21-random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenericDocProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace xqmft
