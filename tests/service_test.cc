// Tests for the serving layer (src/service/): the compile-once QueryCache
// (normalized keys, LRU + byte-budget eviction, singleflight under
// concurrency — the suite runs under the tsan preset), the QueryService
// request path over the parallel streaming machinery, the CompiledPlan /
// QueryRun split (immutability by construction, scratch reuse across
// documents), and the JSON codec behind the serve frontend.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "service/json.h"
#include "service/query_cache.h"
#include "service/query_service.h"
#include "xml/events.h"

namespace xqmft {
namespace {

// A family of distinct tiny queries: qN extracts <hN> hits from /doc/N.
std::string QueryFor(const std::string& label) {
  return "<out>{ for $x in $input/doc/" + label + " return <hit>{$x/text()}</hit> }</out>";
}

const char kDoc[] =
    "<doc><a>1</a><b>2</b><a>3</a><c>4</c><b>5</b><d>6</d></doc>";

// Ground truth through the one-query facade (compiled fresh, no cache).
std::string DirectOutput(const std::string& query, const std::string& xml,
                         const PipelineOptions& options = {}) {
  auto cq = CompiledQuery::Compile(query, options);
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  StringSink sink;
  Status st = cq.value()->StreamString(xml, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink.str();
}

std::string StreamPlan(const CompiledPlan& plan, const std::string& xml) {
  StringSink sink;
  Status st = plan.StreamString(xml, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink.str();
}

// ---------------------------------------------------------------------------
// QueryCache
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, MissCompilesThenHitSharesThePlan) {
  QueryCache cache;
  auto cold = cache.Lookup(QueryFor("a"));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold.value().hit);
  EXPECT_GT(cold.value().compile_ms, 0.0);

  auto warm = cache.Lookup(QueryFor("a"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().hit);
  EXPECT_EQ(warm.value().compile_ms, 0.0);
  EXPECT_EQ(warm.value().plan.get(), cold.value().plan.get());

  QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.compile_ms_total, 0.0);

  EXPECT_EQ(StreamPlan(*cold.value().plan, kDoc),
            DirectOutput(QueryFor("a"), kDoc));
}

TEST(QueryCacheTest, InsignificantWhitespaceSharesAnEntry) {
  QueryCache cache;
  ASSERT_TRUE(cache.Lookup(QueryFor("a")).ok());
  // Same program, different insignificant whitespace — must hit.
  auto spaced = cache.Lookup(
      "  <out>{\n\tfor $x in $input/doc/a\n  return <hit>{$x/text()}</hit> "
      "}</out>\n");
  ASSERT_TRUE(spaced.ok());
  EXPECT_TRUE(spaced.value().hit);
  EXPECT_EQ(cache.stats().compiles, 1u);
}

TEST(QueryCacheTest, QuotedLiteralsAreNotConflated) {
  // Whitespace inside string literals is significant: these two programs
  // differ and must compile separately.
  std::string one =
      "<out>{ for $x in $input/doc/a[./text()=\"x y\"] return $x }</out>";
  std::string two =
      "<out>{ for $x in $input/doc/a[./text()=\"x  y\"] return $x }</out>";
  EXPECT_NE(QueryCache::NormalizeQuery(one), QueryCache::NormalizeQuery(two));
  QueryCache cache;
  ASSERT_TRUE(cache.Lookup(one).ok());
  auto second = cache.Lookup(two);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().hit);
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(QueryCacheTest, NormalizeQueryCollapsesOutsideQuotesOnly) {
  EXPECT_EQ(QueryCache::NormalizeQuery("  a   b  "), "a b");
  EXPECT_EQ(QueryCache::NormalizeQuery("a\n\t b"), "a b");
  EXPECT_EQ(QueryCache::NormalizeQuery("a \"x  y\" b"), "a \"x  y\" b");
  EXPECT_EQ(QueryCache::NormalizeQuery("a 'p  q' b"), "a 'p  q' b");
  EXPECT_EQ(QueryCache::NormalizeQuery(""), "");
  EXPECT_EQ(QueryCache::NormalizeQuery("   "), "");
}

TEST(QueryCacheTest, ElementTextContentIsNotConflated) {
  // Raw text inside an element constructor is data the query emits:
  // internal whitespace runs are significant there, so these are two
  // different programs and must not share a cache key — the second request
  // would be served the first program's plan and emit the wrong bytes.
  std::string one = "<out>a  b</out>";
  std::string two = "<out>a b</out>";
  EXPECT_NE(QueryCache::NormalizeQuery(one), QueryCache::NormalizeQuery(two));
  QueryCache cache;
  auto first = cache.Lookup(one);
  auto second = cache.Lookup(two);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().hit);
  EXPECT_NE(first.value().plan.get(), second.value().plan.get());
  EXPECT_EQ(StreamPlan(*first.value().plan, "<x/>"),
            DirectOutput(one, "<x/>"));
  EXPECT_EQ(StreamPlan(*second.value().plan, "<x/>"),
            DirectOutput(two, "<x/>"));

  // But reformatting *between* expression tokens still hits, even inside
  // an embedded clause nested in element content.
  std::string c = "<out>k{ $input/doc }m</out>";
  std::string d = "<out>k{\n   $input/doc\n}m</out>";
  EXPECT_EQ(QueryCache::NormalizeQuery(c), QueryCache::NormalizeQuery(d));
  // Whitespace differences in the *text* parts stay distinct.
  std::string e = "<out>k  {$input/doc}m</out>";
  EXPECT_NE(QueryCache::NormalizeQuery(c), QueryCache::NormalizeQuery(e));
}

TEST(QueryCacheTest, PlanShapingOptionsArePartOfTheKey) {
  QueryCache cache;
  PipelineOptions opt;
  PipelineOptions no_opt;
  no_opt.optimize = false;
  auto a = cache.Lookup(QueryFor("a"), opt);
  auto b = cache.Lookup(QueryFor("a"), no_opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().plan.get(), b.value().plan.get());
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCacheTest, FailedCompileIsReportedAndNotCached) {
  QueryCache cache;
  auto bad = cache.Lookup("<out>");
  EXPECT_FALSE(bad.ok());
  QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // The error is not cached: the next lookup retries (and fails again).
  EXPECT_FALSE(cache.Lookup("<out>").ok());
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(QueryCacheTest, LruEvictionDropsTheColdestEntry) {
  QueryCacheOptions options;
  options.capacity = 2;
  QueryCache cache(options);
  ASSERT_TRUE(cache.Lookup(QueryFor("a")).ok());
  ASSERT_TRUE(cache.Lookup(QueryFor("b")).ok());
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.Lookup(QueryFor("a")).ok());
  ASSERT_TRUE(cache.Lookup(QueryFor("c")).ok());
  QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // "a" survived (hit), "b" was evicted (recompiles).
  EXPECT_TRUE(cache.Lookup(QueryFor("a")).value().hit);
  EXPECT_FALSE(cache.Lookup(QueryFor("b")).value().hit);
}

TEST(QueryCacheTest, CapacityOneThrashStaysCorrect) {
  QueryCacheOptions options;
  options.capacity = 1;
  QueryCache cache(options);
  const std::string want_a = DirectOutput(QueryFor("a"), kDoc);
  const std::string want_b = DirectOutput(QueryFor("b"), kDoc);
  for (int round = 0; round < 3; ++round) {
    auto a = cache.Lookup(QueryFor("a"));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(StreamPlan(*a.value().plan, kDoc), want_a);
    auto b = cache.Lookup(QueryFor("b"));
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(StreamPlan(*b.value().plan, kDoc), want_b);
  }
  QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.compiles, 6u);  // every alternation recompiles
  EXPECT_EQ(stats.evictions, 5u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(QueryCacheTest, ByteBudgetEvictsButKeepsTheNewestPlan) {
  QueryCacheOptions options;
  options.max_bytes = 1;  // tighter than any single plan
  QueryCache cache(options);
  ASSERT_TRUE(cache.Lookup(QueryFor("a")).ok());
  ASSERT_TRUE(cache.Lookup(QueryFor("b")).ok());
  QueryCacheStats stats = cache.stats();
  // The newest plan always stays resident, everything older goes.
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(cache.Lookup(QueryFor("b")).value().hit);
}

TEST(QueryCacheTest, ClearDropsEverything) {
  QueryCache cache;
  ASSERT_TRUE(cache.Lookup(QueryFor("a")).ok());
  ASSERT_TRUE(cache.Lookup(QueryFor("b")).ok());
  cache.Clear();
  QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_FALSE(cache.Lookup(QueryFor("a")).value().hit);
}

// ---------------------------------------------------------------------------
// QueryCache under concurrency (exercised by the tsan preset)
// ---------------------------------------------------------------------------

TEST(QueryCacheConcurrencyTest, SingleflightCompilesEachQueryOnce) {
  constexpr int kThreads = 8;
  constexpr int kQueries = 4;
  constexpr int kRounds = 5;
  QueryCache cache;
  std::vector<std::string> queries;
  std::vector<std::string> want;
  for (int q = 0; q < kQueries; ++q) {
    queries.push_back(QueryFor(std::string(1, static_cast<char>('a' + q))));
    want.push_back(DirectOutput(queries.back(), kDoc));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (int q = 0; q < kQueries; ++q) {
          // Different threads start at different queries so every key sees
          // genuinely concurrent first lookups.
          int pick = (q + t) % kQueries;
          auto lookup = cache.Lookup(queries[static_cast<std::size_t>(pick)]);
          if (!lookup.ok()) {
            ++mismatches;
            continue;
          }
          StringSink sink;
          Status st = lookup.value().plan->StreamString(kDoc, &sink);
          if (!st.ok() ||
              sink.str() != want[static_cast<std::size_t>(pick)]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  QueryCacheStats stats = cache.stats();
  // Singleflight pinned: however many threads raced, each distinct query
  // compiled exactly once.
  EXPECT_EQ(stats.compiles, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kQueries));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kQueries * kRounds));
}

TEST(QueryCacheConcurrencyTest, EvictionUnderLoadStaysConsistent) {
  constexpr int kThreads = 8;
  constexpr int kQueries = 6;
  constexpr int kRounds = 4;
  QueryCacheOptions options;
  options.capacity = 2;  // far fewer slots than live queries: heavy churn
  QueryCache cache(options);
  std::vector<std::string> queries;
  std::vector<std::string> want;
  for (int q = 0; q < kQueries; ++q) {
    queries.push_back(QueryFor(std::string(1, static_cast<char>('a' + q))));
    want.push_back(DirectOutput(queries.back(), kDoc));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (int q = 0; q < kQueries; ++q) {
          int pick = (q * (t + 1) + r) % kQueries;
          auto lookup = cache.Lookup(queries[static_cast<std::size_t>(pick)]);
          if (!lookup.ok()) {
            ++mismatches;
            continue;
          }
          // An evicted plan stays usable while anyone holds it.
          StringSink sink;
          Status st = lookup.value().plan->StreamString(kDoc, &sink);
          if (!st.ok() ||
              sink.str() != want[static_cast<std::size_t>(pick)]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  QueryCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kQueries * kRounds));
}

TEST(QueryCacheConcurrencyTest, CapacityOneThrashUnderLoad) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 10;
  QueryCacheOptions options;
  options.capacity = 1;  // worst case: every other lookup evicts
  QueryCache cache(options);
  const std::string qa = QueryFor("a");
  const std::string qb = QueryFor("b");
  const std::string want_a = DirectOutput(qa, kDoc);
  const std::string want_b = DirectOutput(qb, kDoc);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        bool use_a = (r + t) % 2 == 0;
        auto lookup = cache.Lookup(use_a ? qa : qb);
        if (!lookup.ok()) {
          ++mismatches;
          continue;
        }
        StringSink sink;
        Status st = lookup.value().plan->StreamString(kDoc, &sink);
        if (!st.ok() || sink.str() != (use_a ? want_a : want_b)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, ExecutesAndReportsCompileOnceStats) {
  QueryService service;
  ServiceRequest request;
  request.query = QueryFor("a");
  request.inputs.push_back(ParallelInput::XmlText(kDoc));

  StringSink first;
  ServiceRequestStats stats;
  ASSERT_TRUE(service.Execute(request, &first, &stats).ok());
  EXPECT_EQ(first.str(), DirectOutput(QueryFor("a"), kDoc));
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_GT(stats.compile_ms, 0.0);
  EXPECT_GE(stats.stream_ms, 0.0);
  ASSERT_EQ(stats.per_input.size(), 1u);
  EXPECT_GT(stats.total.bytes_in, 0u);
  EXPECT_GT(stats.total.output_events, 0u);

  StringSink second;
  ASSERT_TRUE(service.Execute(request, &second, &stats).ok());
  EXPECT_EQ(second.str(), first.str());
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(stats.compile_ms, 0.0);
}

TEST(QueryServiceTest, BatchOutputMatchesSerialAtAnyThreadCount) {
  QueryService service;
  std::vector<std::string> docs = {
      "<doc><a>1</a></doc>",
      "<doc><b>skip</b><a>2</a></doc>",
      "<doc/>",
      "<doc><a>3</a><a>4</a></doc>",
  };
  std::string want;
  for (const std::string& doc : docs) want += DirectOutput(QueryFor("a"), doc);

  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    ServiceRequest request;
    request.query = QueryFor("a");
    for (const std::string& doc : docs) {
      request.inputs.push_back(ParallelInput::XmlText(doc));
    }
    request.threads = threads;
    StringSink sink;
    ServiceRequestStats stats;
    ASSERT_TRUE(service.Execute(request, &sink, &stats).ok());
    EXPECT_EQ(sink.str(), want) << "threads=" << threads;
    EXPECT_EQ(stats.per_input.size(), docs.size());
  }
}

TEST(QueryServiceTest, ExecuteBatchMatchesSerialAndParsesEachDocumentOnce) {
  QueryService service;
  // Four requests over one shared document: two distinct queries, one
  // duplicate (different whitespace, same normalized key), one more
  // distinct. Serial ground truth comes from per-request Execute.
  std::vector<ServiceRequest> requests(4);
  requests[0].query = QueryFor("a");
  requests[1].query = QueryFor("b");
  requests[2].query = "  " + QueryFor("a") + "  ";  // dedups onto [0]'s plan
  requests[3].query = QueryFor("c");
  for (ServiceRequest& r : requests) {
    r.inputs.push_back(ParallelInput::XmlText(kDoc));
  }

  std::vector<std::string> want;
  for (const ServiceRequest& r : requests) {
    QueryService fresh;
    StringSink sink;
    ASSERT_TRUE(fresh.Execute(r, &sink).ok());
    want.push_back(sink.str());
  }

  std::vector<StringSink> sinks(requests.size());
  std::vector<OutputSink*> sink_ptrs;
  for (StringSink& s : sinks) sink_ptrs.push_back(&s);
  ServiceBatchStats stats;
  ASSERT_TRUE(service.ExecuteBatch(requests, sink_ptrs, &stats).ok());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(stats.per_request[i].status.ok());
    EXPECT_EQ(sinks[i].str(), want[i]) << "request " << i;
  }
  // The single-parse attribution: one document, tokenized once, however
  // many requests read it.
  EXPECT_EQ(stats.documents, 1u);
  EXPECT_EQ(stats.parsed_bytes, std::string(kDoc).size());
  EXPECT_EQ(stats.unique_plans, 3u);
  EXPECT_EQ(stats.deduped_requests, 1u);
  EXPECT_TRUE(stats.per_request[2].deduped);
  EXPECT_TRUE(stats.per_request[2].cache_hit);
  EXPECT_FALSE(stats.per_request[0].deduped);
}

TEST(QueryServiceTest, ExecuteBatchGroupsByDocumentList) {
  QueryService service;
  const std::string doc2 = "<doc><a>9</a></doc>";
  std::vector<ServiceRequest> requests(3);
  requests[0].query = QueryFor("a");
  requests[0].inputs.push_back(ParallelInput::XmlText(kDoc));
  requests[1].query = QueryFor("a");
  requests[1].inputs.push_back(ParallelInput::XmlText(doc2));
  requests[2].query = QueryFor("b");
  requests[2].inputs.push_back(ParallelInput::XmlText(kDoc));

  std::vector<StringSink> sinks(3);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1], &sinks[2]};
  ServiceBatchStats stats;
  ASSERT_TRUE(service.ExecuteBatch(requests, sink_ptrs, &stats).ok());
  EXPECT_EQ(sinks[0].str(), DirectOutput(QueryFor("a"), kDoc));
  EXPECT_EQ(sinks[1].str(), DirectOutput(QueryFor("a"), doc2));
  EXPECT_EQ(sinks[2].str(), DirectOutput(QueryFor("b"), kDoc));
  // Two document lists => two groups, each parsed once: requests 0 and 2
  // share one pass, request 1 gets its own.
  EXPECT_EQ(stats.documents, 2u);
  EXPECT_EQ(stats.parsed_bytes, std::string(kDoc).size() + doc2.size());
  // One plan (QueryFor("a")) streams in both groups but counts once.
  EXPECT_EQ(stats.unique_plans, 2u);
  EXPECT_EQ(stats.deduped_requests, 0u);
}

TEST(QueryServiceTest, ExecuteBatchIsolatesFailures) {
  QueryService service;
  std::vector<ServiceRequest> requests(3);
  requests[0].query = QueryFor("a");
  requests[1].query = "<<< not a query";
  requests[2].query = QueryFor("b");
  for (ServiceRequest& r : requests) {
    r.inputs.push_back(ParallelInput::XmlText(kDoc));
  }
  std::vector<StringSink> sinks(3);
  std::vector<OutputSink*> sink_ptrs{&sinks[0], &sinks[1], &sinks[2]};
  ServiceBatchStats stats;
  // One bad query does not fail the batch when the caller can see
  // per-request statuses.
  ASSERT_TRUE(service.ExecuteBatch(requests, sink_ptrs, &stats).ok());
  EXPECT_TRUE(stats.per_request[0].status.ok());
  EXPECT_FALSE(stats.per_request[1].status.ok());
  EXPECT_TRUE(stats.per_request[2].status.ok());
  EXPECT_EQ(sinks[0].str(), DirectOutput(QueryFor("a"), kDoc));
  EXPECT_TRUE(sinks[1].str().empty());
  EXPECT_EQ(sinks[2].str(), DirectOutput(QueryFor("b"), kDoc));

  // Without a stats out-param the first failure surfaces as the return.
  std::vector<StringSink> sinks2(3);
  std::vector<OutputSink*> sink_ptrs2{&sinks2[0], &sinks2[1], &sinks2[2]};
  EXPECT_FALSE(service.ExecuteBatch(requests, sink_ptrs2).ok());

  // Batch-level misuse is always an error.
  EXPECT_FALSE(service.ExecuteBatch({}, {}).ok());
  EXPECT_FALSE(service.ExecuteBatch(requests, {&sinks[0]}).ok());
}

TEST(QueryServiceTest, RejectsEmptyRequestsAndBadQueries) {
  QueryService service;
  ServiceRequest empty;
  empty.query = QueryFor("a");
  StringSink sink;
  EXPECT_FALSE(service.Execute(empty, &sink).ok());

  ServiceRequest bad;
  bad.query = "<out>";
  bad.inputs.push_back(ParallelInput::XmlText(kDoc));
  EXPECT_FALSE(service.Execute(bad, &sink).ok());
  // The failure is not cached; a correct retry compiles cleanly.
  bad.query = QueryFor("a");
  EXPECT_TRUE(service.Execute(bad, &sink).ok());
}

TEST(QueryServiceTest, NoOptRequestsUseASeparatePlan) {
  QueryService service;
  ServiceRequest request;
  request.query = QueryFor("a");
  request.inputs.push_back(ParallelInput::XmlText(kDoc));

  StringSink opt_sink;
  ASSERT_TRUE(service.Execute(request, &opt_sink).ok());
  request.no_opt = true;
  StringSink no_opt_sink;
  ASSERT_TRUE(service.Execute(request, &no_opt_sink).ok());
  // Same semantics, distinct cached plans.
  EXPECT_EQ(opt_sink.str(), no_opt_sink.str());
  EXPECT_EQ(service.cache()->stats().entries, 2u);
}

TEST(QueryServiceTest, BaseNoOptConfigurationIsNotOverridden) {
  // A service configured unoptimized (serve --no-opt) must stay
  // unoptimized for requests that do not set no_opt themselves.
  PipelineOptions base;
  base.optimize = false;
  QueryService service({}, base);
  ServiceRequest request;
  request.query = QueryFor("a");
  request.inputs.push_back(ParallelInput::XmlText(kDoc));
  StringSink sink;
  ASSERT_TRUE(service.Execute(request, &sink).ok());
  // An unoptimized plan keeps the translation's helper states; the
  // optimized plan of the same query is strictly smaller.
  auto unopt = service.cache()->Get(request.query, base);
  ASSERT_TRUE(unopt.ok());
  auto opt = CompiledPlan::Compile(request.query);
  ASSERT_TRUE(opt.ok());
  EXPECT_GT(unopt.value()->mft().Size(), opt.value()->mft().Size());
  // And the served plan really was the cached unoptimized one (hit).
  EXPECT_EQ(service.cache()->stats().compiles, 1u);
}

// ---------------------------------------------------------------------------
// CompiledPlan / QueryRun
// ---------------------------------------------------------------------------

TEST(CompiledPlanTest, FromMftServesParallelRunsWithoutManualWarm) {
  // A hand-written relabeling transducer wrapped as a plan: the parallel
  // entry point needs no warm-before-fanout call because the plan type
  // guarantees a compiled dispatch.
  auto mft = ParseMft("q(%t(x1)x2) -> %t(q(x1)) q(x2)\nq(eps) -> eps\n");
  ASSERT_TRUE(mft.ok()) << mft.status().ToString();
  auto plan = CompiledPlan::FromMft(std::move(mft).value());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan.value()->has_query());

  std::vector<ParallelInput> inputs = {
      ParallelInput::XmlText("<r><a>x</a></r>"),
      ParallelInput::XmlText("<r><b>y</b></r>"),
  };
  ParallelOptions par;
  par.threads = 2;
  StringSink sink;
  ASSERT_TRUE(plan.value()->StreamMany(inputs, &sink, par).ok());
  EXPECT_EQ(sink.str(), "<r><a>x</a></r><r><b>y</b></r>");
}

TEST(CompiledPlanTest, RejectsPerRunValidatorState) {
  PipelineOptions options;
  SchemaValidator* bogus = reinterpret_cast<SchemaValidator*>(0x1);
  options.stream.validator = bogus;
  EXPECT_FALSE(CompiledPlan::Compile(QueryFor("a"), options).ok());
}

TEST(QueryRunTest, ReusedRunMatchesFreshRunsAcrossDocuments) {
  auto plan = CompiledPlan::Compile(QueryFor("a"));
  ASSERT_TRUE(plan.ok());
  QueryRun run(plan.value());
  // Documents with disjoint input alphabets: the run-local table snapshots
  // back to the plan's base between documents, so names interned by one
  // document must not leak into (or corrupt) the next run's emission.
  std::vector<std::string> docs = {
      "<doc><a>first</a><ignore1>z</ignore1></doc>",
      "<doc><other2>q</other2><a>second</a></doc>",
      "<doc/>",
      "<doc><a>first</a><ignore1>z</ignore1></doc>",  // revisit doc 0
  };
  for (const std::string& doc : docs) {
    StringSink reused;
    StreamStats stats;
    ASSERT_TRUE(run.StreamString(doc, &reused, &stats).ok());
    EXPECT_EQ(reused.str(), DirectOutput(QueryFor("a"), doc)) << doc;
    EXPECT_GT(stats.rule_applications, 0u);
  }
}

TEST(QueryRunTest, PeakMemoryIsPerRunNotCumulative) {
  // Pin the table machine: the ops engine streams this query at a flat,
  // document-independent peak, which would make the two peaks equal and
  // prove nothing about per-run accounting.
  PipelineOptions options;
  options.stream.engine = EngineChoice::kTable;
  auto plan = CompiledPlan::Compile("<out>{ $input//a }</out>", options);
  ASSERT_TRUE(plan.ok());
  QueryRun run(plan.value());
  // A big document, then a tiny one: the tiny run's peak must reflect the
  // tiny run, not the big run's high-water mark.
  std::string big = "<doc>";
  for (int i = 0; i < 500; ++i) big += "<a>payload-payload</a>";
  big += "</doc>";
  StreamStats big_stats;
  StringSink s1;
  ASSERT_TRUE(run.StreamString(big, &s1, &big_stats).ok());
  StreamStats tiny_stats;
  StringSink s2;
  ASSERT_TRUE(run.StreamString("<doc><a>x</a></doc>", &s2, &tiny_stats).ok());
  EXPECT_LT(tiny_stats.peak_bytes, big_stats.peak_bytes);
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesRequestsAndEchoesStrings) {
  auto parsed = ParseJson(
      "{\"query\": \"<out>{$input//a}</out>\", \"inputs\": [\"a.xml\"], "
      "\"threads\": 2, \"no_opt\": false, \"id\": null}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.Find("query"), nullptr);
  EXPECT_EQ(v.Find("query")->string, "<out>{$input//a}</out>");
  ASSERT_TRUE(v.Find("inputs")->is_array());
  EXPECT_EQ(v.Find("inputs")->items[0].string, "a.xml");
  EXPECT_EQ(v.Find("threads")->number, 2.0);
  EXPECT_FALSE(v.Find("no_opt")->boolean);
  EXPECT_TRUE(v.Find("id")->is_null());
  EXPECT_EQ(v.Find("absent"), nullptr);
}

TEST(JsonTest, DecodesEscapes) {
  auto parsed = ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string, "a\"b\\c\n\tA\xC3\xA9");
  // Surrogate pair: U+1F600.
  auto emoji = ParseJson("\"\\uD83D\\uDE00\"");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji.value().string, "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad \\q escape\"").ok());
  EXPECT_FALSE(ParseJson("\"unpaired \\uD83D\"").ok());
  EXPECT_FALSE(ParseJson("12 34").ok());   // trailing garbage
  EXPECT_FALSE(ParseJson("not json").ok());
  // Nesting past the depth cap fails cleanly instead of overflowing.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, EscapesStringsForResponses) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

}  // namespace
}  // namespace xqmft
