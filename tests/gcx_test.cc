// Tests for the GCX-like baseline engine: fragment checks (following-sibling
// rejected — Figure 4(c)'s N/A), output equivalence with the reference
// evaluator on supported queries, projection-buffer memory behaviour, and
// the buffer cap that models GCX's failure on the doubling query.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench_common/queries.h"
#include "gcx/gcx_engine.h"
#include "util/rng.h"
#include "xml/forest.h"
#include "xml/sax_parser.h"
#include "xquery/ast.h"
#include "xquery/evaluator.h"

namespace xqmft {
namespace {

std::unique_ptr<QueryExpr> MustParse(const std::string& text) {
  Result<std::unique_ptr<QueryExpr>> r = ParseQuery(text);
  if (!r.ok()) ADD_FAILURE() << "ParseQuery: " << r.status().ToString();
  return std::move(r).ValueOrDie();
}

Forest MustParseXml(const std::string& xml) {
  return std::move(ParseXmlForest(xml).ValueOrDie());
}

// Runs the GCX engine and the reference evaluator; both must agree.
void ExpectGcxAgreement(const std::string& query_text, const std::string& xml,
                        const std::string& label) {
  auto q = MustParse(query_text);
  Forest doc = MustParseXml(xml);
  Result<Forest> expected = EvaluateQuery(*q, doc);
  ASSERT_TRUE(expected.ok()) << label;
  StringSink expected_sink;
  EmitForest(expected.value(), &expected_sink);

  StringSink sink;
  Status st = GcxTransformString(*q, xml, &sink);
  ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
  EXPECT_EQ(sink.str(), expected_sink.str()) << label;
}

TEST(GcxSupportTest, RejectsFollowingSibling) {
  auto q = MustParse(QueryById("q04").text);
  Status st = GcxSupports(*q);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotSupported);
}

TEST(GcxSupportTest, RejectsTopLevelLet) {
  auto q = MustParse("let $v := $input/a return <r>{$v}</r>");
  EXPECT_EQ(GcxSupports(*q).code(), StatusCode::kNotSupported);
}

TEST(GcxSupportTest, RejectsNonFinalStepPredicate) {
  auto q = MustParse("<r>{$input/a[./b]/c}</r>");
  EXPECT_EQ(GcxSupports(*q).code(), StatusCode::kNotSupported);
}

TEST(GcxSupportTest, AcceptsBenchmarkFragment) {
  for (const BenchQuery& bq : Figure3Queries()) {
    auto q = MustParse(bq.text);
    Status st = GcxSupports(*q);
    EXPECT_EQ(st.ok(), bq.gcx_supported) << bq.id << ": " << st.ToString();
  }
}

TEST(GcxEngineTest, SimpleForLoop) {
  ExpectGcxAgreement("for $v in $input/r/a return <m>{$v/text()}</m>",
                     "<r><a>1</a><b>skip</b><a>2</a></r>", "simple-for");
}

TEST(GcxEngineTest, StaticSkeletonAroundSlot) {
  ExpectGcxAgreement(
      "<out><hdr>x</hdr>{for $v in $input/a return <m>{$v}</m>}<ftr>y</ftr></out>",
      "<a>1</a><a>2</a>", "skeleton");
}

TEST(GcxEngineTest, FinalStepPredicateActsAsWhere) {
  ExpectGcxAgreement(
      "<out>{for $p in $input/r/p[./id/text()=\"x\"] return "
      "<hit>{$p/v/text()}</hit>}</out>",
      "<r><p><id>x</id><v>1</v></p><p><id>y</id><v>2</v></p>"
      "<p><id>x</id><v>3</v></p></r>",
      "where");
}

TEST(GcxEngineTest, EmptyPredicate) {
  ExpectGcxAgreement(
      "<out>{for $p in $input/r/p[empty(./h/text())] return <n>{$p/n/text()}"
      "</n>}</out>",
      "<r><p><n>A</n><h>web</h></p><p><n>B</n></p><p><n>C</n><h/></p></r>",
      "empty-pred");
}

TEST(GcxEngineTest, NestedForLoops) {
  ExpectGcxAgreement(
      "for $x in $input/r/g return <grp>{for $y in $x/v return "
      "<val>{$y/text()}</val>}</grp>",
      "<r><g><v>1</v><v>2</v></g><g><v>3</v></g><g/></r>", "nested-for");
}

TEST(GcxEngineTest, LetInsideBody) {
  ExpectGcxAgreement(
      "for $p in $input/r return let $v := $p/a/text() return "
      "<out>{$v}{$v}</out>",
      "<r><a>x</a><a>y</a></r>", "let-body");
}

TEST(GcxEngineTest, BarePathSlotCopies) {
  ExpectGcxAgreement("<out>{$input/r/a}</out>",
                     "<r><a><b>t</b></a><c/><a/></r>", "copy-slot");
}

TEST(GcxEngineTest, DescendantSlotWithNestedMatches) {
  ExpectGcxAgreement("<out>{$input//a}</out>",
                     "<r><a><x><a><a/></a></x></a><b><a/></b></r>",
                     "nested-matches");
}

TEST(GcxEngineTest, FourstarQuery) {
  ExpectGcxAgreement(QueryById("fourstar").text,
                     "<a><b><c><d><e/></d></c></b></a>", "fourstar");
}

TEST(GcxEngineTest, DoubleQueryBuffersBothCopies) {
  ExpectGcxAgreement(QueryById("double").text,
                     "<r><a>1</a><b/></r>", "double");
}

TEST(GcxEngineTest, DeepdupQuery) {
  ExpectGcxAgreement(QueryById("deepdup").text,
                     "<r><x>1</x><y><z/></y></r>", "deepdup");
}

TEST(GcxEngineTest, TextNodeBindings) {
  ExpectGcxAgreement("<out>{$input/r/text()}</out>",
                     "<r>one<a>skip</a>two</r>", "text-binding");
}

TEST(GcxEngineTest, MicroXmarkCorpus) {
  const char* xml =
      "<site><people>"
      "<person><person_id>person0</person_id><name>Alice</name></person>"
      "<person><person_id>person1</person_id><name>Bob</name>"
      "<homepage>http://b</homepage></person>"
      "</people>"
      "<open_auctions><open_auction>"
      "<bidder><increase>1.0</increase></bidder>"
      "<bidder><increase>2.5</increase></bidder>"
      "<reserve>10</reserve></open_auction></open_auctions>"
      "<closed_auctions><closed_auction><seller>"
      "<seller_person>person0</seller_person></seller></closed_auction>"
      "</closed_auctions>"
      "<regions><australia><item><name>i0</name>"
      "<description><text>d</text></description></item></australia>"
      "</regions></site>";
  for (const BenchQuery& bq : Figure3Queries()) {
    if (!bq.gcx_supported) continue;
    ExpectGcxAgreement(bq.text, xml, bq.id);
  }
}

TEST(GcxEngineTest, BufferCapFailsDoublingQuery) {
  auto q = MustParse(QueryById("double").text);
  std::string xml = "<r>";
  for (int i = 0; i < 2000; ++i) xml += "<a>payload</a>";
  xml += "</r>";
  GcxOptions opts;
  opts.max_buffer_bytes = 16 * 1024;
  StringSink sink;
  Status st = GcxTransformString(*q, xml, &sink, opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(GcxEngineTest, SelectionStaysUnderCap) {
  // A selective query with tiny projected buffers passes the same cap that
  // kills the doubling query.
  auto q = MustParse(
      "<out>{for $p in $input/r/p[./id/text()=\"x\"] return "
      "<hit>{$p/v/text()}</hit>}</out>");
  std::string xml = "<r>";
  for (int i = 0; i < 2000; ++i) {
    xml += "<p><id>" + std::string(i % 5 == 0 ? "x" : "y") +
           "</id><v>v</v><junk>jjjjjjjjjjjjjjjjjjjj</junk></p>";
  }
  xml += "</r>";
  GcxOptions opts;
  opts.max_buffer_bytes = 16 * 1024;
  StringSink sink;
  GcxStats stats;
  Status st = GcxTransformString(*q, xml, &sink, opts, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.bindings, 400u);
  EXPECT_LT(stats.peak_bytes, 16u * 1024u);
}

TEST(GcxEngineTest, ProjectionPrunesUnusedContent) {
  // Q1-style query over records with heavy unused payload: peak memory must
  // stay near the projected size, not the record size.
  auto q = MustParse(
      "<out>{for $p in $input/p return <n>{$p/name/text()}</n>}</out>");
  std::string junk(512, 'j');
  std::string xml;
  for (int i = 0; i < 100; ++i) {
    xml += "<p><name>n</name><blob>" + junk + "</blob></p>";
  }
  GcxStats stats;
  StringSink sink;
  ASSERT_TRUE(GcxTransformString(*q, xml, &sink, {}, &stats).ok());
  // 100 records x ~600 bytes junk; projected buffers keep only <name>.
  EXPECT_LT(stats.peak_bytes, 2000u);
}

TEST(GcxEngineTest, StatsArePopulated) {
  auto q = MustParse("for $v in $input/a return <m>{$v}</m>");
  GcxStats stats;
  StringSink sink;
  ASSERT_TRUE(
      GcxTransformString(*q, "<a>1</a><a>2</a>", &sink, {}, &stats).ok());
  EXPECT_EQ(stats.bindings, 2u);
  EXPECT_GT(stats.output_events, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
}

// Regression for the slot runtime's delivery timing: a start-element event
// never delivers a binding — it only opens (or extends) the projection
// buffer. Element bindings reach the sink when their fragment closes, and
// text-node bindings complete immediately. If a start event ever delivered,
// the nested match below would be emitted twice (once half-built) and the
// binding count would drift from the number of completed fragments.
TEST(GcxEngineTest, DeliveryOnlyOnBindingCompletion) {
  // Descendant slot: <a> matches at depth 1 and again nested inside the
  // buffered fragment, so both the streaming path (OnEnd) and the buffered
  // re-scan contribute deliveries.
  auto q = MustParse("<out>{for $v in $input//a return <m>{$v/t/text()}</m>}</out>");
  GcxStats stats;
  StringSink sink;
  ASSERT_TRUE(GcxTransformString(*q,
                                 "<r><a><t>1</t><a><t>2</t></a></a>"
                                 "<a><t>3</t></a></r>",
                                 &sink, {}, &stats)
                  .ok());
  EXPECT_EQ(sink.str(), "<out><m>1</m><m>2</m><m>3</m></out>");
  EXPECT_EQ(stats.bindings, 3u);

  // Text-node bindings deliver from OnText, with no fragment open at all.
  auto qt = MustParse("<out>{for $v in $input/r/t/text() return <m>{$v}</m>}</out>");
  GcxStats tstats;
  StringSink tsink;
  ASSERT_TRUE(GcxTransformString(*qt, "<r><t>x</t><t>y</t></r>", &tsink, {},
                                 &tstats)
                  .ok());
  EXPECT_EQ(tsink.str(), "<out><m>x</m><m>y</m></out>");
  EXPECT_EQ(tstats.bindings, 2u);
}

// Randomized equivalence sweep on the supported corpus.
Forest RandomSite(Rng* rng) {
  Forest f;
  std::function<Forest(int)> gen = [&](int depth) -> Forest {
    Forest g;
    int width = static_cast<int>(rng->Below(4));
    for (int i = 0; i < width; ++i) {
      if (depth > 0 && rng->Chance(3, 5)) {
        g.push_back(Tree::Element(
            std::string(1, static_cast<char>('a' + rng->Below(4))),
            gen(depth - 1)));
      } else if (g.empty() || g.back().kind != NodeKind::kText) {
        g.push_back(Tree::Text("t" + std::to_string(rng->Below(5))));
      }
    }
    return g;
  };
  f.push_back(Tree::Element("site", gen(4)));
  return f;
}

class GcxEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GcxEquivalence, AgreesWithReferenceOnRandomDocs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  Forest doc = RandomSite(&rng);
  std::string xml = ForestToXml(doc);
  for (const BenchQuery& bq : Figure3Queries()) {
    if (!bq.gcx_supported) continue;
    ExpectGcxAgreement(bq.text, xml, bq.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcxEquivalence, ::testing::Range(0, 10));

}  // namespace
}  // namespace xqmft
