// Tests for the interned-symbol table: intern/lookup round-trips, id
// density and stability, the element/text namespace split, copy semantics,
// snapshot truncation (the serving loop's reset-to-base), and the SAX
// parser's id threading.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/sax_parser.h"
#include "xml/symbol_table.h"

namespace xqmft {
namespace {

TEST(SymbolTableTest, InternLookupRoundTrip) {
  SymbolTable t;
  SymbolId a = t.Intern(NodeKind::kElement, "a");
  SymbolId b = t.Intern(NodeKind::kElement, "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.name(a), "a");
  EXPECT_EQ(t.name(b), "b");
  EXPECT_EQ(t.kind(a), NodeKind::kElement);
  EXPECT_EQ(t.Find(NodeKind::kElement, "a"), a);
  EXPECT_EQ(t.Find(NodeKind::kElement, "b"), b);
  EXPECT_EQ(t.Find(NodeKind::kElement, "zzz"), kInvalidSymbol);
  EXPECT_EQ(t.symbol(a), Symbol::Element("a"));
}

TEST(SymbolTableTest, IdsAreDenseAndStable) {
  SymbolTable t;
  SymbolId a = t.Intern(NodeKind::kElement, "a");
  SymbolId b = t.Intern(NodeKind::kElement, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(t.size(), 2u);
  // Re-interning yields the same id; no entry is created.
  EXPECT_EQ(t.Intern(NodeKind::kElement, "a"), a);
  EXPECT_EQ(t.size(), 2u);
  // Ids survive arbitrary later growth (bucket rehashing included).
  for (int i = 0; i < 1000; ++i) {
    t.Intern(NodeKind::kElement, "sym" + std::to_string(i));
  }
  EXPECT_EQ(t.Intern(NodeKind::kElement, "a"), a);
  EXPECT_EQ(t.Intern(NodeKind::kElement, "b"), b);
  EXPECT_EQ(t.name(a), "a");
  EXPECT_EQ(t.size(), 1002u);
  // Dense: every id below size() resolves.
  for (SymbolId id = 0; id < t.size(); ++id) {
    EXPECT_EQ(t.Find(t.kind(id), t.name(id)), id);
  }
}

TEST(SymbolTableTest, ElementAndTextNamespacesAreSeparate) {
  SymbolTable t;
  SymbolId el = t.Intern(NodeKind::kElement, "x");
  SymbolId tx = t.Intern(NodeKind::kText, "x");
  EXPECT_NE(el, tx);
  EXPECT_EQ(t.kind(el), NodeKind::kElement);
  EXPECT_EQ(t.kind(tx), NodeKind::kText);
  EXPECT_EQ(t.Find(NodeKind::kElement, "x"), el);
  EXPECT_EQ(t.Find(NodeKind::kText, "x"), tx);
}

TEST(SymbolTableTest, CopyKeepsIdsAndGrowsIndependently) {
  SymbolTable t;
  SymbolId a = t.Intern(NodeKind::kElement, "a");
  SymbolTable copy = t;
  EXPECT_EQ(copy.Find(NodeKind::kElement, "a"), a);
  SymbolId b = copy.Intern(NodeKind::kElement, "b");
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(t.size(), 1u);  // the original is untouched
  EXPECT_EQ(t.Find(NodeKind::kElement, "b"), kInvalidSymbol);
  EXPECT_EQ(copy.name(b), "b");
}

TEST(SymbolTableTest, TruncateToSnapshotForgetsLaterSymbols) {
  SymbolTable base;
  SymbolId a = base.Intern(NodeKind::kElement, "a");
  SymbolId txt = base.Intern(NodeKind::kText, "x");
  SymbolTable run = base;  // the per-run copy a serving loop keeps
  std::size_t boundary = run.size();

  // A "document" interns input names past the boundary.
  SymbolId doc1 = run.Intern(NodeKind::kElement, "doc1");
  run.Intern(NodeKind::kElement, "doc1extra");
  EXPECT_EQ(run.size(), boundary + 2);

  run.TruncateToSnapshot(boundary);
  // Base symbols keep their ids and stay findable; later ones are gone.
  EXPECT_EQ(run.size(), boundary);
  EXPECT_EQ(run.Find(NodeKind::kElement, "a"), a);
  EXPECT_EQ(run.Find(NodeKind::kText, "x"), txt);
  EXPECT_EQ(run.Find(NodeKind::kElement, "doc1"), kInvalidSymbol);
  EXPECT_EQ(run.Find(NodeKind::kElement, "doc1extra"), kInvalidSymbol);

  // The next "document" reuses the freed dense range.
  EXPECT_EQ(run.Intern(NodeKind::kElement, "doc2"), doc1);
  EXPECT_EQ(run.size(), boundary + 1);

  // Truncating to the current size (the no-new-names fast path) is a no-op.
  run.TruncateToSnapshot(run.size());
  EXPECT_EQ(run.Find(NodeKind::kElement, "doc2"), doc1);
}

TEST(SymbolTableTest, TruncateToSnapshotSurvivesBucketGrowth) {
  SymbolTable t;
  SymbolId keep = t.Intern(NodeKind::kElement, "keep");
  std::size_t boundary = t.size();
  // Force several bucket rehashes past the boundary, then snapshot back.
  for (int i = 0; i < 500; ++i) {
    t.Intern(NodeKind::kElement, "tmp" + std::to_string(i));
  }
  t.TruncateToSnapshot(boundary);
  EXPECT_EQ(t.size(), boundary);
  EXPECT_EQ(t.Find(NodeKind::kElement, "keep"), keep);
  EXPECT_EQ(t.Find(NodeKind::kElement, "tmp0"), kInvalidSymbol);
  EXPECT_EQ(t.Find(NodeKind::kElement, "tmp499"), kInvalidSymbol);
  // The table still interns correctly afterwards (probe index consistent).
  for (int i = 0; i < 500; ++i) {
    t.Intern(NodeKind::kElement, "fresh" + std::to_string(i));
  }
  for (SymbolId id = 0; id < t.size(); ++id) {
    EXPECT_EQ(t.Find(t.kind(id), t.name(id)), id);
  }
}

TEST(SymbolTableTest, ParserThreadsIdsThroughEvents) {
  SymbolTable t;
  StringSource src("<a><b/>hi</a><a/>");
  SaxParser parser(&src, {}, &t);
  std::vector<XmlEvent> events;
  XmlEvent ev;
  do {
    ASSERT_TRUE(parser.Next(&ev).ok());
    events.push_back(ev);
  } while (ev.type != XmlEventType::kEndOfDocument);

  ASSERT_EQ(events.size(), 8u);
  SymbolId a = t.Find(NodeKind::kElement, "a");
  SymbolId b = t.Find(NodeKind::kElement, "b");
  ASSERT_NE(a, kInvalidSymbol);
  ASSERT_NE(b, kInvalidSymbol);
  EXPECT_EQ(events[0].symbol, a);  // <a>
  EXPECT_EQ(events[1].symbol, b);  // <b/>
  EXPECT_EQ(events[2].symbol, b);  // </b> (id from the open stack)
  EXPECT_EQ(events[3].type, XmlEventType::kText);
  EXPECT_EQ(events[3].symbol, kInvalidSymbol);  // content is not interned
  EXPECT_EQ(events[4].symbol, a);  // </a>
  EXPECT_EQ(events[5].symbol, a);  // <a/> reuses the id
  // Names stay populated for non-hot-path consumers.
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  // Two distinct element names => exactly two interned symbols.
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, ParserOwnsTableWhenNoneSupplied) {
  StringSource src("<root/>");
  SaxParser parser(&src);
  XmlEvent ev;
  ASSERT_TRUE(parser.Next(&ev).ok());
  EXPECT_EQ(parser.symbols().name(ev.symbol), "root");
}

}  // namespace
}  // namespace xqmft
