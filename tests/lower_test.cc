// The execution-lowering stage (lower/): lowerability classification, the
// lowered opcode engine's differential equivalence against the table
// machine, and the ops engine's runtime contract (stats accounting, step
// budget, schema validation, sticky errors, done short-circuit).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "event_trace_util.h"
#include "lower/lower.h"
#include "mft/mft.h"
#include "schema/schema.h"
#include "stream/engine.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) {
    ADD_FAILURE() << "ParseMft failed: " << r.status().ToString();
  }
  return std::move(r).ValueOrDie();
}

// Compiles query text through the full pipeline (so the plan is warmed the
// way serving paths see it) and returns the shared plan.
std::shared_ptr<const CompiledPlan> MustCompile(const std::string& text) {
  auto plan = CompiledPlan::Compile(text);
  EXPECT_TRUE(plan.ok()) << text << "\n" << plan.status().ToString();
  return plan.value();
}

std::string XmarkDoc(std::size_t bytes) {
  auto doc = GenerateDatasetString(DatasetKind::kXmark, bytes, /*seed=*/11);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.value();
}

// ---------------------------------------------------------------------------
// Lowerability classification

TEST(Lowerability, ParameterFreeCopyLowers) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();  // compile the tables the lowering reads
  std::string why;
  const lower::LoweredPlan* plan = lower::GetLoweredPlan(m, &why);
  ASSERT_NE(plan, nullptr) << why;
  EXPECT_FALSE(plan->code.empty());
  EXPECT_EQ(plan->states.size(), static_cast<std::size_t>(m.num_states()));
  // The verdict is cached on the transducer: same pointer on re-query.
  EXPECT_EQ(lower::GetLoweredPlan(m), plan);
}

TEST(Lowerability, AccumulatingParametersDoNotLower) {
  auto plan = MustCompile(QueryById("q01").text);
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(plan->mft(), &why), nullptr);
  EXPECT_NE(why.find("accumulating parameters"), std::string::npos) << why;
}

TEST(Lowerability, TextContentMatchDoesNotLower) {
  // A rule keyed on text content ("hit") needs the event's character data
  // for dispatch; the opcode programs are resolved per element id only.
  Mft m = MustParseMft(
      "q(\"hit\"(x1)x2) -> mark(eps) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(m, &why), nullptr);
  EXPECT_NE(why.find("matches on text content"), std::string::npos) << why;
}

TEST(Lowerability, X0CallCycleDoesNotLower) {
  // q(eps) -> q(x0) never terminates; x0 inlining must detect the cycle
  // instead of recursing forever.
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> q(x0)\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(m, &why), nullptr);
  EXPECT_NE(why.find("x0-call cycle"), std::string::npos) << why;
}

TEST(Lowerability, Fig3CorpusClassification) {
  // The parameter-free half of the corpus lowers; every query with a
  // predicate translates to accumulating parameters and falls back.
  const std::set<std::string> kLowerable = {"q02", "q13", "double",
                                            "fourstar", "deepdup"};
  for (const BenchQuery& q : Figure3Queries()) {
    auto plan = MustCompile(q.text);
    std::string why;
    const lower::LoweredPlan* lp = lower::GetLoweredPlan(plan->mft(), &why);
    if (kLowerable.count(q.id) != 0) {
      EXPECT_NE(lp, nullptr) << q.id << ": " << why;
    } else {
      EXPECT_EQ(lp, nullptr) << q.id;
      EXPECT_NE(why.find("not lowerable"), std::string::npos)
          << q.id << ": " << why;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: ops engine vs table engine over the Figure 3 corpus

TEST(LoweredDifferential, Fig3CorpusChunkedRefill) {
  const std::string xml = XmarkDoc(16 * 1024);
  for (const BenchQuery& q : Figure3Queries()) {
    auto plan = MustCompile(q.text);
    const bool lowers = lower::GetLoweredPlan(plan->mft()) != nullptr;

    StreamOptions table_opts;
    table_opts.engine = EngineChoice::kTable;
    StringSink want;
    ASSERT_TRUE(
        StreamTransformString(plan->mft(), xml, &want, table_opts).ok())
        << q.id;

    // Chunked refill: the lowered engine must be insensitive to how the
    // parser's buffer boundaries slice tags and text runs.
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{64}, std::size_t{4096}}) {
      StreamOptions ops_opts;
      ops_opts.engine = EngineChoice::kOps;
      ChunkedSource source(xml, chunk);
      StringSink got;
      StreamStats stats;
      Status st = StreamTransform(plan->mft(), &source, &got, ops_opts,
                                  &stats);
      ASSERT_TRUE(st.ok()) << q.id << " chunk=" << chunk << ": "
                           << st.ToString();
      ASSERT_EQ(got.str(), want.str()) << q.id << " chunk=" << chunk;
      EXPECT_EQ(stats.used_ops_engine, lowers) << q.id;
      if (lowers) {
        // Arena-served consumers, no refcounted cells, no thunks.
        EXPECT_GT(stats.cells_arena, 0u) << q.id;
        EXPECT_EQ(stats.cells_created, 0u) << q.id;
        EXPECT_EQ(stats.exprs_created, 0u) << q.id;
        EXPECT_GT(stats.rule_applications, 0u) << q.id;
        EXPECT_GT(stats.peak_bytes, 0u) << q.id;
      }
    }
  }
}

TEST(LoweredDifferential, MultiTreeForestInput) {
  // The document-as-forest contract: multiple top-level trees stream
  // through the ops engine identically to the table machine.
  auto plan = MustCompile("<out>{ for $x in $input/a return <h>{$x}</h> }</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  const std::string xml = "<a><b>1</b></a><c>skip</c><a>2</a>";
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  ASSERT_TRUE(StreamTransformString(plan->mft(), xml, &want, table_opts).ok());
  StreamOptions ops_opts;
  ops_opts.engine = EngineChoice::kOps;
  StringSink got;
  StreamStats stats;
  ASSERT_TRUE(
      StreamTransformString(plan->mft(), xml, &got, ops_opts, &stats).ok());
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_EQ(got.str(), want.str());
}

// ---------------------------------------------------------------------------
// Runtime contract

TEST(OpsEngine, ForcedOpsOnUnlowerablePlanFallsBack) {
  auto plan = MustCompile(QueryById("q01").text);
  const std::string xml =
      "<site><people><person><person_id>person0</person_id>"
      "<name>n</name></person></people></site>";
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  ASSERT_TRUE(StreamTransformString(plan->mft(), xml, &want, table_opts).ok());

  StreamOptions ops_opts;
  ops_opts.engine = EngineChoice::kOps;
  StringSink got;
  StreamStats stats;
  ASSERT_TRUE(
      StreamTransformString(plan->mft(), xml, &got, ops_opts, &stats).ok());
  EXPECT_FALSE(stats.used_ops_engine);
  EXPECT_EQ(stats.cells_arena, 0u);
  EXPECT_GT(stats.cells_created, 0u);
  EXPECT_EQ(got.str(), want.str());
}

TEST(OpsEngine, StepBudgetTrips) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  StreamOptions options;
  options.engine = EngineChoice::kOps;
  options.max_steps = 2;  // the //a scan charges per consumer per event
  std::string xml = "<doc>";
  for (int i = 0; i < 64; ++i) xml += "<a>x</a>";
  xml += "</doc>";
  // Stats are only populated by a successful Finish, so the status is the
  // whole observable here.
  StringSink sink;
  Status st = StreamTransformString(plan->mft(), xml, &sink, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(OpsEngine, ValidatorRunsUnderOpsEngine) {
  auto plan = MustCompile("<out>{$input//b}</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  auto schema = Schema::Parse("a -> b*\nb -> \n");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  StreamOptions ok_opts;
  ok_opts.engine = EngineChoice::kOps;
  SchemaValidator ok_validator(schema.value());
  ok_opts.validator = &ok_validator;
  StringSink ok_sink;
  StreamStats ok_stats;
  Status ok_st = StreamTransformString(plan->mft(), "<a><b/><b/></a>",
                                       &ok_sink, ok_opts, &ok_stats);
  EXPECT_TRUE(ok_st.ok()) << ok_st.ToString();
  EXPECT_TRUE(ok_stats.used_ops_engine);
  EXPECT_EQ(ok_sink.str(), "<out><b></b><b></b></out>");

  StreamOptions bad_opts;
  bad_opts.engine = EngineChoice::kOps;
  SchemaValidator bad_validator(schema.value());
  bad_opts.validator = &bad_validator;
  StringSink bad_sink;
  Status bad_st = StreamTransformString(plan->mft(), "<a><c/></a>",
                                        &bad_sink, bad_opts);
  EXPECT_FALSE(bad_st.ok());
}

TEST(OpsEngine, UnbalancedEndElementIsStickyError) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  XmlEvent ev;
  ev.type = XmlEventType::kEndElement;
  ev.name = "a";
  Status first = engine.Feed(ev);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  // Sticky: the same status again on every later call.
  ev.type = XmlEventType::kStartElement;
  EXPECT_EQ(engine.Feed(ev).ToString(), first.ToString());
  EXPECT_EQ(engine.Finish().ToString(), first.ToString());
}

TEST(OpsEngine, DoneAfterEndOfDocumentIgnoresLaterEvents) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  ASSERT_TRUE(engine.Prime().ok());
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";
  ASSERT_TRUE(engine.Feed(ev).ok());
  ev.type = XmlEventType::kEndElement;
  ASSERT_TRUE(engine.Feed(ev).ok());
  ev.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(engine.Feed(ev).ok());
  EXPECT_TRUE(engine.done());
  const std::string after_done = sink.str();
  // Feeding past done is a no-op (the same short-circuit the table machine
  // applies, before any validation).
  ev.type = XmlEventType::kStartElement;
  ev.name = "zzz";
  EXPECT_TRUE(engine.Feed(ev).ok());
  EXPECT_EQ(sink.str(), after_done);
  StreamStats stats;
  ASSERT_TRUE(engine.Finish(&stats).ok());
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_EQ(sink.str(), "<out><a></a></out>");
}

TEST(OpsEngine, FinishSuppliesEndOfDocument) {
  // Constant output without a single input event: Prime + Finish.
  auto plan = MustCompile("<out>done</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  EXPECT_TRUE(engine.Finish().ok());
  EXPECT_EQ(sink.str(), "<out>done</out>");
}

}  // namespace
}  // namespace xqmft
