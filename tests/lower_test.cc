// The execution-lowering stage (lower/): lowerability classification, the
// lowered opcode engine's differential equivalence against the table
// machine, and the ops engine's runtime contract (stats accounting, step
// budget, schema validation, sticky errors, done short-circuit).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common/queries.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "event_trace_util.h"
#include "lower/lower.h"
#include "mft/mft.h"
#include "schema/schema.h"
#include "stream/engine.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {
namespace {

Mft MustParseMft(const std::string& text) {
  Result<Mft> r = ParseMft(text);
  if (!r.ok()) {
    ADD_FAILURE() << "ParseMft failed: " << r.status().ToString();
  }
  return std::move(r).ValueOrDie();
}

// Compiles query text through the full pipeline (so the plan is warmed the
// way serving paths see it) and returns the shared plan.
std::shared_ptr<const CompiledPlan> MustCompile(const std::string& text) {
  auto plan = CompiledPlan::Compile(text);
  EXPECT_TRUE(plan.ok()) << text << "\n" << plan.status().ToString();
  return plan.value();
}

std::string XmarkDoc(std::size_t bytes) {
  auto doc = GenerateDatasetString(DatasetKind::kXmark, bytes, /*seed=*/11);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.value();
}

// ---------------------------------------------------------------------------
// Lowerability classification

TEST(Lowerability, ParameterFreeCopyLowers) {
  Mft m = MustParseMft(
      "qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\nqcopy(eps) -> eps\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();  // compile the tables the lowering reads
  std::string why;
  const lower::LoweredPlan* plan = lower::GetLoweredPlan(m, &why);
  ASSERT_NE(plan, nullptr) << why;
  EXPECT_FALSE(plan->code.empty());
  EXPECT_EQ(plan->states.size(), static_cast<std::size_t>(m.num_states()));
  // The verdict is cached on the transducer: same pointer on re-query.
  EXPECT_EQ(lower::GetLoweredPlan(m), plan);
}

TEST(Lowerability, AccumulatingParametersLowerWithRopes) {
  // Append-only accumulating parameters lower to rope-register opcodes; the
  // classic collect-then-emit shape runs fully on the opcode core.
  Mft m = MustParseMft(
      "q(a(x1)x2) -> p(x1, eps) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n"
      "p(b(x1)x2, y1) -> p(x2, y1 b(eps))\n"
      "p(%t(x1)x2, y1) -> p(x2, y1)\n"
      "p(eps, y1) -> y1\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  const lower::LoweredPlan* lp = lower::GetLoweredPlan(m, &why);
  ASSERT_NE(lp, nullptr) << why;
  EXPECT_FALSE(lp->hybrid) << why;
  EXPECT_EQ(why, "full");
}

TEST(Lowerability, PredicateQueriesLowerHybrid) {
  // q01's predicate compiles to a selector cluster; the lowering factors the
  // common suffix and bridges the remainder into a table-machine sub-run.
  auto plan = MustCompile(QueryById("q01").text);
  std::string why;
  const lower::LoweredPlan* lp = lower::GetLoweredPlan(plan->mft(), &why);
  ASSERT_NE(lp, nullptr) << why;
  EXPECT_TRUE(lp->hybrid);
  EXPECT_NE(lp->bridge_mft, nullptr);
  EXPECT_FALSE(lp->bridge_sites.empty());
  EXPECT_NE(why.find("hybrid"), std::string::npos) << why;
}

TEST(Lowerability, NonlinearParameterDoesNotLower) {
  // y1 y1 duplicates an accumulating parameter: rope registers are linear
  // (spliced exactly once), so the plan must stay on the table machine.
  Mft m = MustParseMft(
      "q(a(x1)x2) -> q2(x1, m(eps)) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n"
      "q2(a(x1)x2, y1) -> y1 y1\n"
      "q2(%t(x1)x2, y1) -> y1\n"
      "q2(eps, y1) -> y1\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(m, &why), nullptr);
  EXPECT_NE(why.find("parameter-carrying call over children does not lower"),
            std::string::npos)
      << why;
}

TEST(Lowerability, TextContentMatchDoesNotLower) {
  // A rule keyed on text content ("hit") needs the event's character data
  // for dispatch; the opcode programs are resolved per element id only.
  Mft m = MustParseMft(
      "q(\"hit\"(x1)x2) -> mark(eps) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(m, &why), nullptr);
  EXPECT_NE(why.find("matches on text content"), std::string::npos) << why;
}

TEST(Lowerability, X0CallCycleDoesNotLower) {
  // q(eps) -> q(x0) never terminates; x0 inlining must detect the cycle
  // instead of recursing forever.
  Mft m = MustParseMft(
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> q(x0)\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  std::string why;
  EXPECT_EQ(lower::GetLoweredPlan(m, &why), nullptr);
  EXPECT_NE(why.find("x0-call cycle"), std::string::npos) << why;
}

TEST(Lowerability, Fig3CorpusClassification) {
  // The whole Figure 3 corpus now leaves the pure table path: parameter-free
  // queries lower fully; predicate queries (accumulating parameters fed by a
  // selector cluster) lower hybrid with table-machine bridge sites.
  const std::set<std::string> kHybrid = {"q01", "q04", "q16", "q17"};
  for (const BenchQuery& q : Figure3Queries()) {
    auto plan = MustCompile(q.text);
    std::string why;
    const lower::LoweredPlan* lp = lower::GetLoweredPlan(plan->mft(), &why);
    ASSERT_NE(lp, nullptr) << q.id << ": " << why;
    if (kHybrid.count(q.id) != 0) {
      EXPECT_TRUE(lp->hybrid) << q.id << ": " << why;
      EXPECT_NE(why.find("hybrid"), std::string::npos) << q.id << ": " << why;
    } else {
      EXPECT_FALSE(lp->hybrid) << q.id << ": " << why;
      EXPECT_EQ(why, "full") << q.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: ops engine vs table engine over the Figure 3 corpus

TEST(LoweredDifferential, Fig3CorpusChunkedRefill) {
  const std::string xml = XmarkDoc(16 * 1024);
  for (const BenchQuery& q : Figure3Queries()) {
    auto plan = MustCompile(q.text);
    const lower::LoweredPlan* lp = lower::GetLoweredPlan(plan->mft());
    const bool lowers = lp != nullptr;
    const bool hybrid = lowers && lp->hybrid;

    StreamOptions table_opts;
    table_opts.engine = EngineChoice::kTable;
    StringSink want;
    ASSERT_TRUE(
        StreamTransformString(plan->mft(), xml, &want, table_opts).ok())
        << q.id;

    // Chunked refill: the lowered engine must be insensitive to how the
    // parser's buffer boundaries slice tags and text runs.
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                              std::size_t{64}, std::size_t{4096}}) {
      StreamOptions ops_opts;
      ops_opts.engine = EngineChoice::kOps;
      ChunkedSource source(xml, chunk);
      StringSink got;
      StreamStats stats;
      Status st = StreamTransform(plan->mft(), &source, &got, ops_opts,
                                  &stats);
      ASSERT_TRUE(st.ok()) << q.id << " chunk=" << chunk << ": "
                           << st.ToString();
      ASSERT_EQ(got.str(), want.str()) << q.id << " chunk=" << chunk;
      EXPECT_EQ(stats.used_ops_engine, lowers) << q.id;
      if (lowers && !hybrid) {
        // Fully lowered: arena-served consumers, no refcounted cells, no
        // thunks, no table sub-runs.
        EXPECT_GT(stats.cells_arena, 0u) << q.id;
        EXPECT_EQ(stats.cells_created, 0u) << q.id;
        EXPECT_EQ(stats.exprs_created, 0u) << q.id;
        EXPECT_EQ(stats.bridge_runs, 0u) << q.id;
        EXPECT_FALSE(stats.hybrid_plan) << q.id;
        EXPECT_GT(stats.rule_applications, 0u) << q.id;
        EXPECT_GT(stats.peak_bytes, 0u) << q.id;
      } else if (lowers) {
        // Hybrid: the opcode core ran the scan (arena consumers) while the
        // bridge sites executed as table-machine sub-runs, which account
        // their refcounted cells/thunks into the same stats.
        EXPECT_GT(stats.cells_arena, 0u) << q.id;
        EXPECT_GT(stats.bridge_runs, 0u) << q.id;
        EXPECT_TRUE(stats.hybrid_plan) << q.id;
        EXPECT_GT(stats.rule_applications, 0u) << q.id;
        EXPECT_GT(stats.peak_bytes, 0u) << q.id;
      }
    }
  }
}

TEST(LoweredDifferential, MultiTreeForestInput) {
  // The document-as-forest contract: multiple top-level trees stream
  // through the ops engine identically to the table machine.
  auto plan = MustCompile("<out>{ for $x in $input/a return <h>{$x}</h> }</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  const std::string xml = "<a><b>1</b></a><c>skip</c><a>2</a>";
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  ASSERT_TRUE(StreamTransformString(plan->mft(), xml, &want, table_opts).ok());
  StreamOptions ops_opts;
  ops_opts.engine = EngineChoice::kOps;
  StringSink got;
  StreamStats stats;
  ASSERT_TRUE(
      StreamTransformString(plan->mft(), xml, &got, ops_opts, &stats).ok());
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_EQ(got.str(), want.str());
}

// ---------------------------------------------------------------------------
// Runtime contract

TEST(OpsEngine, ForcedOpsOnUnlowerablePlanFallsBack) {
  // Every Figure 3 query now lowers, so the fallback path needs a
  // handwritten transducer: a nonlinear parameter (y1 y1) is outside the
  // rope fragment and must silently run on the table machine.
  Mft m = MustParseMft(
      "q(a(x1)x2) -> q2(x1, m(eps)) q(x2)\n"
      "q(%t(x1)x2) -> q(x2)\n"
      "q(eps) -> eps\n"
      "q2(a(x1)x2, y1) -> y1 y1\n"
      "q2(%t(x1)x2, y1) -> y1\n"
      "q2(eps, y1) -> y1\n");
  ASSERT_TRUE(m.Validate().ok());
  const std::string xml = "<a><a>inner</a></a>";
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  ASSERT_TRUE(StreamTransformString(m, xml, &want, table_opts).ok());

  StreamOptions ops_opts;
  ops_opts.engine = EngineChoice::kOps;
  StringSink got;
  StreamStats stats;
  ASSERT_TRUE(StreamTransformString(m, xml, &got, ops_opts, &stats).ok());
  EXPECT_FALSE(stats.used_ops_engine);
  EXPECT_EQ(stats.cells_arena, 0u);
  EXPECT_GT(stats.cells_created, 0u);
  EXPECT_EQ(got.str(), want.str());
}

TEST(OpsEngine, StepBudgetTrips) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  StreamOptions options;
  options.engine = EngineChoice::kOps;
  options.max_steps = 2;  // the //a scan charges per consumer per event
  std::string xml = "<doc>";
  for (int i = 0; i < 64; ++i) xml += "<a>x</a>";
  xml += "</doc>";
  // Stats are only populated by a successful Finish, so the status is the
  // whole observable here.
  StringSink sink;
  Status st = StreamTransformString(plan->mft(), xml, &sink, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(OpsEngine, ValidatorRunsUnderOpsEngine) {
  auto plan = MustCompile("<out>{$input//b}</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  auto schema = Schema::Parse("a -> b*\nb -> \n");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  StreamOptions ok_opts;
  ok_opts.engine = EngineChoice::kOps;
  SchemaValidator ok_validator(schema.value());
  ok_opts.validator = &ok_validator;
  StringSink ok_sink;
  StreamStats ok_stats;
  Status ok_st = StreamTransformString(plan->mft(), "<a><b/><b/></a>",
                                       &ok_sink, ok_opts, &ok_stats);
  EXPECT_TRUE(ok_st.ok()) << ok_st.ToString();
  EXPECT_TRUE(ok_stats.used_ops_engine);
  EXPECT_EQ(ok_sink.str(), "<out><b></b><b></b></out>");

  StreamOptions bad_opts;
  bad_opts.engine = EngineChoice::kOps;
  SchemaValidator bad_validator(schema.value());
  bad_opts.validator = &bad_validator;
  StringSink bad_sink;
  Status bad_st = StreamTransformString(plan->mft(), "<a><c/></a>",
                                        &bad_sink, bad_opts);
  EXPECT_FALSE(bad_st.ok());
}

TEST(OpsEngine, UnbalancedEndElementIsStickyError) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  XmlEvent ev;
  ev.type = XmlEventType::kEndElement;
  ev.name = "a";
  Status first = engine.Feed(ev);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kInvalidArgument);
  // Sticky: the same status again on every later call.
  ev.type = XmlEventType::kStartElement;
  EXPECT_EQ(engine.Feed(ev).ToString(), first.ToString());
  EXPECT_EQ(engine.Finish().ToString(), first.ToString());
}

TEST(OpsEngine, DoneAfterEndOfDocumentIgnoresLaterEvents) {
  auto plan = MustCompile("<out>{$input//a}</out>");
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  ASSERT_TRUE(engine.Prime().ok());
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = "a";
  ASSERT_TRUE(engine.Feed(ev).ok());
  ev.type = XmlEventType::kEndElement;
  ASSERT_TRUE(engine.Feed(ev).ok());
  ev.type = XmlEventType::kEndOfDocument;
  ASSERT_TRUE(engine.Feed(ev).ok());
  EXPECT_TRUE(engine.done());
  const std::string after_done = sink.str();
  // Feeding past done is a no-op (the same short-circuit the table machine
  // applies, before any validation).
  ev.type = XmlEventType::kStartElement;
  ev.name = "zzz";
  EXPECT_TRUE(engine.Feed(ev).ok());
  EXPECT_EQ(sink.str(), after_done);
  StreamStats stats;
  ASSERT_TRUE(engine.Finish(&stats).ok());
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_EQ(sink.str(), "<out><a></a></out>");
}

TEST(OpsEngine, FinishSuppliesEndOfDocument) {
  // Constant output without a single input event: Prime + Finish.
  auto plan = MustCompile("<out>done</out>");
  ASSERT_NE(lower::GetLoweredPlan(plan->mft()), nullptr);
  StreamOptions options = plan->options().stream;
  options.engine = EngineChoice::kOps;
  StringSink sink;
  Engine engine(plan->mft(), &sink, options);
  EXPECT_TRUE(engine.Finish().ok());
  EXPECT_EQ(sink.str(), "<out>done</out>");
}

// ---------------------------------------------------------------------------
// Lowering cache invalidation: every Mft mutator must drop the cached
// verdict, not just the rule setters.

TEST(Lowerability, MutatorsDropTheLoweringCache) {
  Mft m = MustParseMft(
      "qa(%t(x1)x2) -> a(eps) qa(x2)\n"
      "qa(eps) -> eps\n"
      "qb(%t(x1)x2) -> b(eps) qb(x2)\n"
      "qb(eps) -> eps\n");
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  ASSERT_NE(lower::GetLoweredPlan(m), nullptr);
  ASSERT_NE(m.lowering_cache(), nullptr);

  // Renaming a state bakes into the plan's diagnostics; the cached verdict
  // must go with the dispatch.
  m.set_state_name(0, "qa_renamed");
  EXPECT_EQ(m.lowering_cache(), nullptr);
  ASSERT_NE(lower::GetLoweredPlan(m), nullptr);
  ASSERT_NE(m.lowering_cache(), nullptr);

  // Moving the initial state changes the program semantically: a stale
  // cached plan would keep emitting <a> from the old start state.
  StateId qb = -1;
  for (StateId q = 0; q < m.num_states(); ++q) {
    if (m.state_name(q) == "qb") qb = q;
  }
  ASSERT_GE(qb, 0);
  StreamOptions ops;
  ops.engine = EngineChoice::kOps;
  StringSink before;
  StreamStats sb;
  ASSERT_TRUE(StreamTransformString(m, "<x/>", &before, ops, &sb).ok());
  EXPECT_TRUE(sb.used_ops_engine);
  EXPECT_EQ(before.str(), "<a></a>");

  m.set_initial_state(qb);
  EXPECT_EQ(m.lowering_cache(), nullptr);
  StringSink after;
  StreamStats sa;
  ASSERT_TRUE(StreamTransformString(m, "<x/>", &after, ops, &sa).ok());
  EXPECT_TRUE(sa.used_ops_engine);
  EXPECT_EQ(after.str(), "<b></b>");
}

// ---------------------------------------------------------------------------
// Rope-register edge cases (accumulating parameters on the opcode core)

// Collects the <b> children of each <a> into an accumulating parameter and
// emits the collection when the subtree closes.
const char kRopeCollectMft[] =
    "q(a(x1)x2) -> p(x1, eps) q(x2)\n"
    "q(%t(x1)x2) -> q(x2)\n"
    "q(eps) -> eps\n"
    "p(b(x1)x2, y1) -> p(x2, y1 b(eps))\n"
    "p(%t(x1)x2, y1) -> p(x2, y1)\n"
    "p(eps, y1) -> y1\n";

// Concatenates every text node under <a> into the parameter (kRopeTextCur).
const char kRopeTextAccumMft[] =
    "q(a(x1)x2) -> p(x1, eps) q(x2)\n"
    "q(%t(x1)x2) -> q(x2)\n"
    "q(eps) -> eps\n"
    "p(%ttext(x1)x2, y1) -> p(x2, y1 %t)\n"
    "p(%t(x1)x2, y1) -> p(x2, y1)\n"
    "p(eps, y1) -> y1\n";

// Runs `m` forced-ops over `xml`, checks byte equality against the table
// machine, and returns the ops run's stats.
StreamStats DiffOpsVsTable(const Mft& m, const std::string& xml) {
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  EXPECT_TRUE(StreamTransformString(m, xml, &want, table_opts).ok());
  StreamOptions ops_opts;
  ops_opts.engine = EngineChoice::kOps;
  StringSink got;
  StreamStats stats;
  Status st = StreamTransformString(m, xml, &got, ops_opts, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(stats.used_ops_engine);
  EXPECT_EQ(got.str(), want.str());
  return stats;
}

TEST(RopeRegisters, EmptyParameterEmitsNothing) {
  Mft m = MustParseMft(kRopeCollectMft);
  ASSERT_TRUE(m.Validate().ok());
  // No <b> children anywhere: the rope register is created, never appended
  // to, and spliced empty at the end of the subtree.
  StreamStats stats = DiffOpsVsTable(m, "<a><c>t</c><c/></a>");
  EXPECT_EQ(stats.cells_created, 0u);
  EXPECT_EQ(stats.exprs_created, 0u);
}

TEST(RopeRegisters, GrowthAcrossArenaChunks) {
  Mft m = MustParseMft(kRopeTextAccumMft);
  ASSERT_TRUE(m.Validate().ok());
  // Enough accumulated text that the rope's chunk chain spans several 64 KiB
  // arena chunks; the <b/> separators force distinct text records instead of
  // one whole-record chunk.
  std::string xml = "<a>";
  for (int i = 0; i < 6000; ++i) {
    xml += "chunk";
    xml += std::to_string(i);
    xml += "<b/>";
  }
  xml += "</a>";
  StreamStats stats = DiffOpsVsTable(m, xml);
  EXPECT_EQ(stats.cells_created, 0u);
  EXPECT_GT(stats.peak_bytes, 64u * 1024u);
}

TEST(RopeRegisters, ScratchReuseBetweenDocuments) {
  Mft m = MustParseMft(kRopeCollectMft);
  ASSERT_TRUE(m.Validate().ok());
  m.dispatch();
  ASSERT_NE(lower::GetLoweredPlan(m), nullptr);
  // The arena mark/reset discipline: a second document through the same
  // scratch must not see rope chunks (or prealloc blocks) left over from
  // the first.
  const std::string docs[] = {"<a><b>one</b>x<b>two</b></a>",
                              "<a>just text</a>",
                              "<a><b/><c><b/></c><b/></a>"};
  StreamScratch scratch(m);
  for (const std::string& xml : docs) {
    StreamOptions table_opts;
    table_opts.engine = EngineChoice::kTable;
    StringSink want;
    ASSERT_TRUE(StreamTransformString(m, xml, &want, table_opts).ok());
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
      ChunkedSource source(xml, chunk);
      StringSink got;
      StreamStats stats;
      StreamOptions ops_opts;
      ops_opts.engine = EngineChoice::kOps;
      Status st =
          StreamTransform(m, &source, &got, ops_opts, &stats, &scratch);
      ASSERT_TRUE(st.ok()) << xml << ": " << st.ToString();
      EXPECT_TRUE(stats.used_ops_engine);
      EXPECT_EQ(got.str(), want.str()) << xml << " chunk=" << chunk;
    }
  }
}

TEST(RopeRegisters, StepBudgetTripsMidAppend) {
  Mft m = MustParseMft(kRopeCollectMft);
  ASSERT_TRUE(m.Validate().ok());
  StreamOptions options;
  options.engine = EngineChoice::kOps;
  options.max_steps = 2;
  std::string xml = "<a>";
  for (int i = 0; i < 64; ++i) xml += "<b/>";
  xml += "</a>";
  StringSink sink;
  Status st = StreamTransformString(m, xml, &sink, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Hybrid differential: the paper's section 2.1 example crosses the bridge

TEST(LoweredDifferential, Section21HybridChunkedRefill) {
  auto plan = MustCompile(kSection21Query);
  std::string why;
  const lower::LoweredPlan* lp = lower::GetLoweredPlan(plan->mft(), &why);
  ASSERT_NE(lp, nullptr) << why;
  EXPECT_TRUE(lp->hybrid) << why;
  const std::string xml =
      "<r><a><b><c>1</c><d>2</d><b><c>3</c></b></b></a>"
      "<a>t<b><d>4</d></b></a></r>";
  StreamOptions table_opts;
  table_opts.engine = EngineChoice::kTable;
  StringSink want;
  ASSERT_TRUE(StreamTransformString(plan->mft(), xml, &want, table_opts).ok());
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{64}, std::size_t{4096}}) {
    ChunkedSource source(xml, chunk);
    StringSink got;
    StreamStats stats;
    StreamOptions ops_opts;
    ops_opts.engine = EngineChoice::kOps;
    Status st =
        StreamTransform(plan->mft(), &source, &got, ops_opts, &stats);
    ASSERT_TRUE(st.ok()) << "chunk=" << chunk << ": " << st.ToString();
    EXPECT_EQ(got.str(), want.str()) << "chunk=" << chunk;
    EXPECT_TRUE(stats.used_ops_engine);
    EXPECT_TRUE(stats.hybrid_plan);
    EXPECT_GT(stats.bridge_runs, 0u);
  }
}

}  // namespace
}  // namespace xqmft
