// Shared event-trace scaffolding for the parser and pretok suites. The
// differential tests in xml_test.cc and pretok_test.cc must compare the
// *same* notion of an event trace, so it lives here once: an owned-string
// event record (independent of view lifetimes), Trace() over any
// EventSource or raw bytes, and a Read()-only source that forces the
// refill path.

#ifndef XQMFT_TESTS_EVENT_TRACE_UTIL_H_
#define XQMFT_TESTS_EVENT_TRACE_UTIL_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/event_source.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xqmft {

// One event with owned strings: the trace a parse produces, independent of
// view lifetimes.
struct TracedEvent {
  XmlEventType type;
  std::string name;
  std::string text;

  bool operator==(const TracedEvent& o) const {
    return type == o.type && name == o.name && text == o.text;
  }
};

inline Result<std::vector<TracedEvent>> Trace(EventSource* src) {
  std::vector<TracedEvent> out;
  XmlEvent ev;
  do {
    XQMFT_RETURN_NOT_OK(src->Next(&ev));
    out.push_back({ev.type, std::string(ev.name), std::string(ev.text)});
  } while (ev.type != XmlEventType::kEndOfDocument);
  return out;
}

inline Result<std::vector<TracedEvent>> Trace(ByteSource* src,
                                              SaxOptions opts = {}) {
  SaxParser parser(src, opts);
  return Trace(static_cast<EventSource*>(&parser));
}

// Read()-only source that hands out at most `chunk` bytes per call and never
// exposes Contents(), so the parser refills — with chunk = 1 every scan
// state crosses a window boundary.
class ChunkedSource : public ByteSource {
 public:
  ChunkedSource(std::string_view s, std::size_t chunk)
      : s_(s), chunk_(chunk) {}
  std::size_t Read(char* buf, std::size_t n) override {
    std::size_t take = std::min({n, chunk_, s_.size() - pos_});
    std::memcpy(buf, s_.data() + pos_, take);
    pos_ += take;
    return take;
  }

 private:
  std::string_view s_;
  std::size_t chunk_;
  std::size_t pos_ = 0;
};

}  // namespace xqmft

#endif  // XQMFT_TESTS_EVENT_TRACE_UTIL_H_
