// Tests for the grammar-compressed output sink (Section 6 future work):
// hash-consing, compression ratios on repetitive outputs, and the headline
// property — the doubling transducer's exponential output stays linear as a
// DAG.
#include <gtest/gtest.h>

#include <string>

#include "mft/mft.h"
#include "stream/dag_sink.h"
#include "stream/engine.h"
#include "xml/forest.h"

namespace xqmft {
namespace {

TEST(DagSinkTest, DistinctTreesGetDistinctRules) {
  DagSink sink;
  sink.StartElement("a");
  sink.Text("x");
  sink.EndElement("a");
  sink.StartElement("b");
  sink.EndElement("b");
  EXPECT_EQ(sink.total_nodes(), 3u);
  EXPECT_EQ(sink.unique_nodes(), 3u);  // "x", a("x"), b()
  ASSERT_EQ(sink.roots().size(), 2u);
  EXPECT_EQ(sink.Expand(sink.roots()[0]), "<a>x</a>");
  EXPECT_EQ(sink.Expand(sink.roots()[1]), "<b></b>");
}

TEST(DagSinkTest, IdenticalSubtreesShare) {
  DagSink sink;
  for (int i = 0; i < 10; ++i) {
    sink.StartElement("item");
    sink.StartElement("name");
    sink.Text("same");
    sink.EndElement("name");
    sink.EndElement("item");
  }
  EXPECT_EQ(sink.total_nodes(), 30u);
  EXPECT_EQ(sink.unique_nodes(), 3u);  // "same", name, item
  EXPECT_DOUBLE_EQ(sink.CompressionRatio(), 10.0);
  EXPECT_EQ(sink.roots().size(), 10u);
  EXPECT_EQ(sink.roots()[0], sink.roots()[9]);
}

TEST(DagSinkTest, GrammarRendering) {
  DagSink sink;
  sink.StartElement("a");
  sink.Text("t");
  sink.EndElement("a");
  std::string g = sink.GrammarToString();
  EXPECT_NE(g.find("#0 = \"t\""), std::string::npos);
  EXPECT_NE(g.find("#1 = a(#0)"), std::string::npos);
  EXPECT_NE(g.find("roots: #1"), std::string::npos);
}

// Section 4.2's doubling FT: n input nodes -> 2^n output leaves; the DAG
// stays linear in n (the Section 6 claim this sink implements).
TEST(DagSinkTest, ExponentialOutputCompressesToLinearDag) {
  Mft dbl = std::move(ParseMft("q(a(x1)x2) -> q(x2) q(x2)\n"
                               "q(%t(x1)x2) -> q(x2)\n"
                               "q(eps) -> a\n")
                          .ValueOrDie());
  const int n = 18;
  std::string xml;
  for (int i = 0; i < n; ++i) xml += "<a/>";

  DagSink sink;
  Status st = StreamTransformString(dbl, xml, &sink);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(sink.total_nodes(), 1u << n);  // 262144 unfolded leaves
  EXPECT_EQ(sink.unique_nodes(), 1u);      // all identical
  EXPECT_GT(sink.CompressionRatio(), 100000.0);
}

TEST(DagSinkTest, MixedContentRoundTripsThroughExpand) {
  DagSink sink;
  Mft copy = std::move(ParseMft("qcopy(%t(x1)x2) -> %t(qcopy(x1)) qcopy(x2)\n"
                                "qcopy(eps) -> eps\n")
                           .ValueOrDie());
  const char* xml = "<r><a>1</a><a>1</a><b>2</b></r>";
  ASSERT_TRUE(StreamTransformString(copy, xml, &sink).ok());
  ASSERT_EQ(sink.roots().size(), 1u);
  EXPECT_EQ(sink.Expand(sink.roots()[0]),
            "<r><a>1</a><a>1</a><b>2</b></r>");
  // 7 unfolded nodes (r, 2x a, 2x "1", b, "2"); the two identical <a>1</a>
  // subtrees share rules, leaving 5: "1", a("1"), "2", b("2"), r(...).
  EXPECT_EQ(sink.total_nodes(), 7u);
  EXPECT_EQ(sink.unique_nodes(), 5u);
}

}  // namespace
}  // namespace xqmft
